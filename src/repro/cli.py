"""Command-line interface: ``brepartition``.

Subcommands
-----------
``info``
    List available datasets (with the paper's Table 4 scale) and
    divergences.
``search``
    Build an index over a named dataset and run the query workload,
    printing the paper's metrics.
``experiment``
    Run one of the paper's tables/figures and print the report
    (same engine as ``benchmarks/run_all.py``).
``serve-bench``
    Closed-loop micro-batched serving benchmark: compare per-request
    (B=1) serving against the asyncio :class:`~repro.serve.MicroBatcher`
    under modeled I/O (same engine as ``benchmarks/bench_serve.py``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .baselines.bbtree_index import BBTreeIndex
from .baselines.linear_scan import LinearScanIndex
from .core.approximate import ApproximateBrePartitionIndex
from .core.config import BrePartitionConfig
from .core.index import BrePartitionIndex
from .datasets.proxies import PAPER_SCALE, available_datasets, load_dataset
from .divergences.registry import available_divergences
from .eval.experiments import ALL_EXPERIMENTS
from .eval.harness import WorkloadResult, run_workload
from .eval.reporting import format_table
from .vafile.vafile import VAFileIndex

__all__ = ["main"]

_METHODS = ("bp", "abp", "vaf", "bbt", "scan")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="brepartition",
        description="BrePartition reproduction: high-dimensional Bregman kNN",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list datasets and divergences")

    search = sub.add_parser("search", help="run a kNN workload on a dataset")
    search.add_argument("dataset", choices=available_datasets())
    search.add_argument("--method", choices=_METHODS, default="bp")
    search.add_argument("--n", type=int, default=2000, help="dataset size")
    search.add_argument("--k", type=int, default=20)
    search.add_argument("--queries", type=int, default=10)
    search.add_argument("--partitions", type=int, default=None, help="M (default: Theorem 4)")
    search.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="B",
        help="drive the workload through search_batch in chunks of B queries",
    )
    search.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="S",
        help="partition the point file across S simulated disks",
    )
    search.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        metavar="W",
        help="fan batched candidate fetches out across W threads "
        "(requires --shards and --batch; results are identical)",
    )
    search.add_argument(
        "--replication-factor",
        type=int,
        default=None,
        metavar="R",
        help="keep R copies of every shard's pages on distinct simulated "
        "disks (requires --shards; failover keeps results exact with any "
        "R-1 replicas of each shard dead)",
    )
    search.add_argument(
        "--hedge-after-ms",
        type=float,
        default=None,
        metavar="MS",
        help="race a replica fetch still outstanding after MS milliseconds "
        "against the shard's next live replica (requires --replication-factor)",
    )
    search.add_argument(
        "--refine-kernel",
        choices=("auto", "dense", "sparse"),
        default=None,
        help="batch refinement kernel: dense (union x batch), sparse "
        "(real pairs only), or auto density-based dispatch (default)",
    )
    search.add_argument(
        "--refine-backend",
        choices=("auto", "serial", "process"),
        default=None,
        help="batch refinement compute backend: serial in-process kernels, "
        "process (shared-memory multiprocess pool), or auto dispatch above "
        "the amortization floor (default); results are bitwise identical",
    )
    search.add_argument(
        "--refine-workers",
        type=int,
        default=None,
        metavar="P",
        help="refinement pool width: score the batch's union rows / pairs "
        "across P worker processes (requires --batch; results are identical)",
    )
    search.add_argument("--probability", type=float, default=0.9, help="ABP guarantee p")
    search.add_argument("--seed", type=int, default=0)

    experiment = sub.add_parser("experiment", help="reproduce a paper table/figure")
    experiment.add_argument("name", choices=sorted(ALL_EXPERIMENTS))

    serve = sub.add_parser(
        "serve-bench",
        help="closed-loop micro-batching benchmark (per-request vs batched)",
    )
    serve.add_argument("dataset", choices=available_datasets())
    serve.add_argument("--n", type=int, default=600, help="dataset size")
    serve.add_argument("--k", type=int, default=10)
    serve.add_argument("--clients", type=int, default=64, help="concurrent closed-loop clients")
    serve.add_argument("--requests", type=int, default=2, help="requests per client")
    serve.add_argument(
        "--max-batch", type=int, default=64, metavar="B",
        help="micro-batch size cap (the baseline always runs B=1)",
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="micro-batch accumulation deadline in milliseconds",
    )
    serve.add_argument(
        "--concurrent-batches", type=int, default=1, metavar="W",
        help="in-flight batch worker pool width (1 serializes batches; "
        "per-batch I/O scopes keep accounting exact when overlapped)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=None, metavar="Q",
        help="bound the admission queue to Q waiting requests "
        "(default: unbounded)",
    )
    serve.add_argument(
        "--overflow", choices=("wait", "reject"), default="wait",
        help="full-queue policy: wait (backpressure) or reject "
        "(fail fast with ServerOverloadedError)",
    )
    serve.add_argument(
        "--iops", type=float, default=4000.0,
        help="modeled page reads/second per simulated disk (0 disables)",
    )
    serve.add_argument("--shards", type=int, default=1, help="simulated disks")
    serve.add_argument(
        "--shard-workers", type=int, default=1, help="fan-out threads per batch"
    )
    serve.add_argument(
        "--refine-workers", type=int, default=1, metavar="P",
        help="refinement process-pool width per batch (1 = serial scoring)",
    )
    serve.add_argument(
        "--refine-backend", choices=("auto", "serial", "process"), default="auto",
        help="refinement compute backend (auto dispatches to the process "
        "pool only above the amortization floor)",
    )
    serve.add_argument(
        "--replication-factor", type=int, default=1, metavar="R",
        help="copies of every shard's pages on distinct disks "
        "(failover keeps serving exact through dead replicas)",
    )
    serve.add_argument(
        "--hedge-after-ms", type=float, default=None, metavar="MS",
        help="hedge replica fetches slower than MS milliseconds "
        "(requires --replication-factor > 1)",
    )
    serve.add_argument("--seed", type=int, default=0)

    lint = sub.add_parser(
        "lint",
        help="run the AST invariant linter (python -m repro.analysis)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    lint.add_argument(
        "--baseline", default=None,
        help="grandfathered-findings file (default: analysis-baseline.json)",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to the current findings and exit 0",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rule ids and exit",
    )
    lint.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-finding listing; status line only",
    )
    return parser


def _cmd_info() -> int:
    rows = []
    for name in available_datasets():
        scale = PAPER_SCALE.get(name, {})
        rows.append(
            [
                name,
                scale.get("n", "-"),
                scale.get("d", "-"),
                scale.get("measure", "-"),
                scale.get("page", "-"),
                scale.get("M", "-"),
            ]
        )
    print("datasets (paper-scale metadata from Table 4):")
    print(format_table(["dataset", "paper_n", "d", "measure", "page", "paper_M"], rows))
    print("\ndivergences:", ", ".join(available_divergences()))
    return 0


def _make_index(args, dataset):
    config = BrePartitionConfig(
        n_partitions=args.partitions,
        page_size_bytes=dataset.page_size_bytes,
        seed=args.seed,
    )
    if args.method == "bp":
        return BrePartitionIndex(dataset.divergence, config)
    if args.method == "abp":
        return ApproximateBrePartitionIndex(
            dataset.divergence, probability=args.probability, config=config
        )
    if args.method == "vaf":
        return VAFileIndex(
            dataset.divergence, bits=8, page_size_bytes=dataset.page_size_bytes
        )
    if args.method == "bbt":
        return BBTreeIndex(
            dataset.divergence, page_size_bytes=dataset.page_size_bytes, seed=args.seed
        )
    return LinearScanIndex(dataset.divergence, page_size_bytes=dataset.page_size_bytes)


def _cmd_search(args) -> int:
    if args.batch is not None and args.batch < 1:
        print(f"--batch must be >= 1, got {args.batch}", file=sys.stderr)
        return 2
    if args.shards is not None and args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.shard_workers is not None and args.shard_workers < 1:
        print(
            f"--shard-workers must be >= 1, got {args.shard_workers}",
            file=sys.stderr,
        )
        return 2
    if args.refine_workers is not None and args.refine_workers < 1:
        print(
            f"--refine-workers must be >= 1, got {args.refine_workers}",
            file=sys.stderr,
        )
        return 2
    if args.replication_factor is not None and args.replication_factor < 1:
        print(
            f"--replication-factor must be >= 1, got {args.replication_factor}",
            file=sys.stderr,
        )
        return 2
    if args.hedge_after_ms is not None and args.hedge_after_ms <= 0:
        print(
            f"--hedge-after-ms must be positive, got {args.hedge_after_ms}",
            file=sys.stderr,
        )
        return 2
    dataset = load_dataset(args.dataset, n=args.n, n_queries=args.queries, seed=args.seed)
    print(f"dataset: {dataset!r} ({dataset.description})")
    index = _make_index(args, dataset)
    index.build(dataset.points)
    if isinstance(index, BrePartitionIndex):
        print(f"built in {index.construction_seconds:.2f}s, M={index.n_partitions}")
    else:
        print(f"built in {index.construction_seconds:.2f}s")
    if args.batch is not None and not hasattr(index, "search_batch"):
        print(f"method {args.method!r} has no batch engine; ignoring --batch")
        args.batch = None
    if args.shards is not None and not hasattr(index, "reshard"):
        print(f"method {args.method!r} has no sharded storage; ignoring --shards")
        args.shards = None
    if args.shard_workers is not None and args.shards is None:
        print("--shard-workers needs a sharded store; ignoring (pass --shards)")
        args.shard_workers = None
    if args.replication_factor is not None and args.shards is None:
        print("--replication-factor needs a sharded store; ignoring (pass --shards)")
        args.replication_factor = None
    if args.replication_factor is not None and args.replication_factor > args.shards:
        print(
            f"--replication-factor {args.replication_factor} exceeds "
            f"--shards {args.shards}; clamping to {args.shards}"
        )
        args.replication_factor = args.shards
    if args.hedge_after_ms is not None and (
        args.replication_factor is None or args.replication_factor < 2
    ):
        print(
            "--hedge-after-ms needs replicas to race; ignoring "
            "(pass --replication-factor >= 2)"
        )
        args.hedge_after_ms = None
    if args.shard_workers is not None and args.batch is None:
        print("--shard-workers only affects batched fan-out; ignoring (pass --batch)")
        args.shard_workers = None
    if args.refine_kernel is not None and args.batch is None:
        print("--refine-kernel only affects batch refinement; ignoring (pass --batch)")
        args.refine_kernel = None
    if args.refine_workers is not None and args.batch is None:
        print("--refine-workers only affects batch refinement; ignoring (pass --batch)")
        args.refine_workers = None
    if args.refine_backend is not None and args.batch is None:
        print("--refine-backend only affects batch refinement; ignoring (pass --batch)")
        args.refine_backend = None
    config = getattr(index, "config", None)
    if args.shard_workers is not None and (
        config is None or not hasattr(config, "shard_workers")
    ):
        print(f"method {args.method!r} has no fan-out pool; ignoring --shard-workers")
        args.shard_workers = None
    if args.refine_kernel is not None and (
        config is None or not hasattr(config, "refine_kernel")
    ):
        print(f"method {args.method!r} has no kernel dispatch; ignoring --refine-kernel")
        args.refine_kernel = None
    if (args.refine_workers is not None or args.refine_backend is not None) and (
        config is None or not hasattr(config, "refine_backend")
    ):
        print(
            f"method {args.method!r} has no refinement pool; "
            "ignoring --refine-workers/--refine-backend"
        )
        args.refine_workers = None
        args.refine_backend = None
    result = run_workload(
        index,
        dataset,
        k=args.k,
        method_name=args.method.upper(),
        batch_size=args.batch,
        shards=args.shards,
        shard_workers=args.shard_workers,
        refine_kernel=args.refine_kernel,
        refine_backend=args.refine_backend,
        refine_workers=args.refine_workers,
        replication_factor=args.replication_factor,
        hedge_after_ms=args.hedge_after_ms,
    )
    print(format_table(WorkloadResult.headers(), [result.row()]))
    if args.batch is not None:
        saved = result.extras.get("batch_pages_saved", 0)
        print(
            f"batch mode: B={args.batch}, coalesced I/O saved "
            f"{saved} page reads across {result.n_queries} queries"
        )
        stage_seconds = result.extras.get("stage_seconds")
        if stage_seconds:
            split = "  ".join(
                f"{name} {seconds * 1000.0:.1f}ms"
                for name, seconds in stage_seconds.items()
            )
            print(f"batch stage time: {split}")
    if args.shards is not None:
        fanout = result.extras.get("shard_pages_read")
        workers = args.shard_workers if args.shard_workers is not None else 1
        replicas = (
            args.replication_factor if args.replication_factor is not None else 1
        )
        print(
            f"sharded storage: S={args.shards} simulated disks, "
            f"{workers} fan-out worker(s)"
            + (f", R={replicas} replicas/shard" if replicas > 1 else "")
            + (f", page fan-out {fanout}" if fanout is not None else "")
        )
    kernel = result.extras.get("refine_kernel")
    if kernel is not None:
        print(f"batch refinement kernel: {kernel}")
    backend = result.extras.get("refine_backend")
    if backend is not None:
        print(
            f"batch refinement backend: {backend} "
            f"({result.extras.get('refine_workers', 1)} worker(s))"
        )
    return 0


def _cmd_experiment(name: str) -> int:
    report = ALL_EXPERIMENTS[name]()
    print(report.to_text())
    return 0


def _cmd_serve_bench(args) -> int:
    from .serve import make_serving_index, run_closed_loop

    for name, value, floor in (
        ("--n", args.n, 2),
        ("--k", args.k, 1),
        ("--clients", args.clients, 1),
        ("--requests", args.requests, 1),
        ("--max-batch", args.max_batch, 1),
        ("--concurrent-batches", args.concurrent_batches, 1),
        ("--shards", args.shards, 1),
        ("--shard-workers", args.shard_workers, 1),
        ("--refine-workers", args.refine_workers, 1),
        ("--replication-factor", args.replication_factor, 1),
    ):
        if value < floor:
            print(f"{name} must be >= {floor}, got {value}", file=sys.stderr)
            return 2
    if args.max_wait_ms < 0.0:
        print(f"--max-wait-ms must be >= 0, got {args.max_wait_ms}", file=sys.stderr)
        return 2
    if args.replication_factor > args.shards:
        print(
            f"--replication-factor {args.replication_factor} exceeds "
            f"--shards {args.shards}",
            file=sys.stderr,
        )
        return 2
    if args.hedge_after_ms is not None and args.hedge_after_ms <= 0:
        print(
            f"--hedge-after-ms must be positive, got {args.hedge_after_ms}",
            file=sys.stderr,
        )
        return 2
    if args.queue_depth is not None and args.queue_depth < 1:
        print(
            f"--queue-depth must be >= 1, got {args.queue_depth}", file=sys.stderr
        )
        return 2
    dataset, index = make_serving_index(
        dataset_name=args.dataset,
        n=args.n,
        seed=args.seed,
        n_shards=args.shards,
        shard_workers=args.shard_workers,
        iops=args.iops if args.iops > 0 else None,
        replication_factor=args.replication_factor,
        hedge_after_ms=args.hedge_after_ms,
        refine_backend=args.refine_backend,
        refine_workers=args.refine_workers,
    )
    print(f"dataset: {dataset!r} ({dataset.description})")
    print(
        f"serving {args.clients} closed-loop clients x {args.requests} requests, "
        f"k={args.k}, {args.concurrent_batches} in-flight batch(es), "
        + (
            f"queue depth {args.queue_depth} ({args.overflow})"
            if args.queue_depth is not None
            else "unbounded queue"
        )
        + ", modeled "
        + (f"{args.iops:.0f} IOPS/disk" if args.iops > 0 else "free I/O")
    )
    arms = [
        ("per-request (B=1)", 1, 0.0),
        (f"micro-batched (B<={args.max_batch})", args.max_batch, args.max_wait_ms),
    ]
    rows = []
    for label, max_batch, wait_ms in arms:
        row = run_closed_loop(
            index,
            dataset.queries,
            args.k,
            n_clients=args.clients,
            requests_per_client=args.requests,
            max_batch_size=max_batch,
            max_wait_ms=wait_ms,
            max_concurrent_batches=args.concurrent_batches,
            max_queue_depth=args.queue_depth,
            overflow=args.overflow,
        )
        rows.append(row)
        shed = f"  shed {row['n_rejected']}" if row["n_rejected"] else ""
        print(
            f"  {label:24s} {row['throughput_rps']:8.1f} req/s  "
            f"mean latency {row['mean_latency_ms']:7.2f}ms  "
            f"mean batch {row['mean_batch_size']:5.1f}  "
            f"pages/req {row['mean_pages_per_request']:6.1f}{shed}"
        )
    print(
        f"micro-batching speedup: "
        f"{rows[1]['throughput_rps'] / rows[0]['throughput_rps']:.2f}x throughput"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``brepartition`` console script."""
    args = _build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "search":
        return _cmd_search(args)
    if args.command == "experiment":
        return _cmd_experiment(args.name)
    if args.command == "serve-bench":
        return _cmd_serve_bench(args)
    if args.command == "lint":
        return _cmd_lint(args)
    return 1  # pragma: no cover - argparse enforces choices


def _cmd_lint(args) -> int:
    from .analysis.cli import main as lint_main

    forwarded: list[str] = list(args.paths)
    if args.baseline is not None:
        forwarded += ["--baseline", args.baseline]
    if args.update_baseline:
        forwarded.append("--update-baseline")
    if args.list_rules:
        forwarded.append("--list-rules")
    if args.quiet:
        forwarded.append("--quiet")
    return lint_main(forwarded)


if __name__ == "__main__":
    sys.exit(main())
