"""Dynamic updates for BB-trees (the paper's future-work extension).

The paper closes by noting BB-forest "support[ing] inserting or deleting
large-scale data more efficiently" as future work.  This module provides
the tree-level building blocks:

* :func:`insert_point` -- descend to the child whose center is nearest
  (by the tree's divergence), inflating every ball on the path so the
  covering invariant holds, append to the reached leaf, and re-split the
  leaf by two-means when it exceeds capacity.
* :func:`delete_point` -- remove a point id from its leaf and tombstone
  its storage row (``_ids[row]`` becomes ``-1`` and the row joins the
  free list for reuse by a later insert).  Ball radii are left untouched
  (they remain valid covers, merely conservative); a periodic rebuild
  restores tightness.
* :func:`extend_tree` -- a *new* tree equal to the receiver plus extra
  points, sharing the immutable per-node balls and id arrays of the
  original on the unchanged subtrees.  This is the extend-merge path of
  the index-level update subsystem.

Concurrency contract (snapshot semantics): a built tree mutated through
:func:`insert_point` / :func:`delete_point` is **not** safe to search
concurrently -- these calls reallocate ``_points`` / ``_ids`` and edit
leaves in place.  The index level therefore never mutates a published
tree: :class:`~repro.core.index.BrePartitionIndex` routes updates
through its delta buffer, searches run against the immutable
``(frozen base, delta version)`` pair captured by
:meth:`~repro.core.index.BrePartitionIndex.snapshot`, and merges build
*new* trees (via :func:`extend_tree` or a rebuild) before atomically
swapping the published base.  Direct mutation stays available for
single-threaded tree-level use and for the merge machinery itself.

Invariants preserved by every operation here: each node's ball covers
all points in its subtree, each live point id appears in exactly one
leaf, and ``_ids`` / ``_row_of`` / the leaves agree on exactly which
ids are live.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..clustering.bregman_kmeans import bregman_kmeans
from ..exceptions import InvalidParameterError, StorageError
from ..geometry.ball import BregmanBall
from .node import BBTreeNode
from .tree import BBTree

__all__ = ["insert_point", "delete_point", "extend_tree"]


def insert_point(tree: BBTree, point: np.ndarray, point_id: int) -> None:
    """Insert ``point`` with id ``point_id`` into a built tree.

    The point is registered in the tree's in-memory storage (reusing a
    tombstoned row when one is free) so subsequent leaf-level
    evaluations and rebuild-splits see it.
    """
    root = tree._require_built()
    point = np.asarray(point, dtype=float)
    if point.shape[0] != tree._points.shape[1]:
        raise InvalidParameterError("point dimensionality mismatch")
    pid = int(point_id)
    if pid < 0:
        raise InvalidParameterError("point ids must be non-negative")
    if pid in tree._row_of:
        raise InvalidParameterError(f"point id {point_id} already present")

    # Register the new point in the tree's storage, reusing a row freed
    # by an earlier delete when available.
    free = _free_rows(tree)
    if free:
        row = free.pop()
        tree._points[row] = point
        tree._ids[row] = pid
    else:
        row = tree._points.shape[0]
        tree._points = np.vstack([tree._points, point[None, :]])
        tree._ids = np.concatenate([tree._ids, [pid]])
    tree._row_of[pid] = row

    _descend_insert(tree, root, point, pid)


def delete_point(tree: BBTree, point_id: int) -> None:
    """Remove ``point_id`` from the tree.

    The storage row is tombstoned (``_ids[row] = -1``) and queued for
    reuse, so leaf enumeration and ``_ids`` always agree on the live id
    set; balls keep their radii, staying valid covers.
    """
    root = tree._require_built()
    pid = int(point_id)
    if pid not in tree._row_of:
        raise StorageError(f"point id {point_id} not in tree")

    target_row = tree._row_of[pid]
    point = tree._points[target_row]
    # Walk down guided by ball membership; fall back to exhaustive leaf
    # scan if the geometric walk misses (possible after many updates).
    leaf = _find_leaf(tree, root, point, pid)
    if leaf is None:
        leaf = _scan_for_leaf(root, pid)
    if leaf is None:  # pragma: no cover - defended by _row_of check
        raise StorageError(f"point id {point_id} not found in any leaf")
    leaf.point_ids = leaf.point_ids[leaf.point_ids != pid]
    del tree._row_of[pid]
    tree._ids[target_row] = -1
    _free_rows(tree).append(target_row)


def extend_tree(tree: BBTree, points: np.ndarray, new_ids: np.ndarray) -> BBTree:
    """A new tree equal to ``tree`` plus ``points`` (ids ``new_ids``).

    The receiver is never mutated -- searches pinned to it keep reading
    a consistent structure.  The clone shares the original's per-node
    :class:`~repro.geometry.ball.BregmanBall` and ``point_ids`` objects
    on untouched subtrees (both are *replaced*, never edited, by the
    insert path), so cloning is O(nodes), not O(points).
    """
    tree._require_built()
    points = np.atleast_2d(np.asarray(points, dtype=float))
    new_ids = np.asarray(new_ids, dtype=int)
    if points.shape[0] != new_ids.shape[0]:
        raise InvalidParameterError("points and new_ids must align")
    if points.shape[0] and points.shape[1] != tree._points.shape[1]:
        raise InvalidParameterError("point dimensionality mismatch")

    clone = BBTree(
        tree.divergence,
        leaf_capacity=tree.leaf_capacity,
        # independent stream: the original's rng state must not advance
        rng=np.random.default_rng(int(tree.rng.integers(2**63))),
        lb_max_iter=tree.lb_max_iter,
        lb_tol=tree.lb_tol,
    )
    clone.root = _copy_node(tree.root)
    clone._points = tree._points.copy()
    clone._ids = tree._ids.copy()
    clone._row_of = dict(tree._row_of)
    clone._free_rows = list(_free_rows(tree))
    for point, pid in zip(points, new_ids):
        insert_point(clone, point, int(pid))
    return clone


def _copy_node(node: BBTreeNode) -> BBTreeNode:
    """Structural copy sharing the (immutable-by-convention) ball and
    point_ids objects; inserts into the copy replace them, never edit."""
    return BBTreeNode(
        ball=node.ball,
        point_ids=node.point_ids,
        left=_copy_node(node.left) if node.left is not None else None,
        right=_copy_node(node.right) if node.right is not None else None,
        depth=node.depth,
    )


def _free_rows(tree: BBTree) -> List[int]:
    """The tree's free-row list (created lazily for pre-existing trees)."""
    free = getattr(tree, "_free_rows", None)
    if free is None:
        free = tree._free_rows = []
    return free


def _descend_insert(
    tree: BBTree, root: BBTreeNode, point: np.ndarray, point_id: int
) -> None:
    """Walk a registered point down to a leaf, inflating balls en route."""
    node = root
    while True:
        _inflate(tree, node, point)
        if node.is_leaf:
            node.point_ids = np.concatenate([node.point_ids, [point_id]])
            if node.point_ids.shape[0] > tree.leaf_capacity:
                _split_leaf(tree, node)
            return
        # Descend to the child with the nearer center (divergence to
        # center, matching the construction's assignment rule).
        left, right = node.left, node.right
        d_left = tree.divergence.divergence(point, left.ball.center)
        d_right = tree.divergence.divergence(point, right.ball.center)
        node = left if d_left <= d_right else right


def _inflate(tree: BBTree, node: BBTreeNode, point: np.ndarray) -> None:
    """Grow the node's ball (if needed) to cover ``point``."""
    dist = tree.divergence.divergence(point, node.ball.center)
    if dist > node.ball.radius:
        node.ball = BregmanBall(center=node.ball.center, radius=dist)


def _split_leaf(tree: BBTree, leaf: BBTreeNode) -> None:
    """Split an overfull leaf into two children by Bregman two-means."""
    rows = np.array([tree._row_of[int(pid)] for pid in leaf.point_ids])
    subset = tree._points[rows]
    result = bregman_kmeans(tree.divergence, subset, k=2, rng=tree.rng, max_iter=25)
    left_mask = result.labels == 0
    if left_mask.all() or not left_mask.any():
        half = rows.shape[0] // 2
        left_mask = np.zeros(rows.shape[0], dtype=bool)
        left_mask[:half] = True

    def _make_child(mask: np.ndarray) -> BBTreeNode:
        ids = leaf.point_ids[mask]
        ball = BregmanBall.covering(tree.divergence, subset[mask])
        return BBTreeNode(ball=ball, point_ids=ids, depth=leaf.depth + 1)

    leaf.left = _make_child(left_mask)
    leaf.right = _make_child(~left_mask)
    leaf.point_ids = None  # becomes internal


def _find_leaf(tree: BBTree, node: BBTreeNode, point: np.ndarray, point_id: int):
    """Geometric walk to the leaf holding ``point_id`` (None if missed)."""
    if node.is_leaf:
        return node if point_id in node.point_ids else None
    for child in (node.left, node.right):
        if child is None:
            continue
        if child.ball.contains(tree.divergence, point):
            found = _find_leaf(tree, child, point, point_id)
            if found is not None:
                return found
    return None


def _scan_for_leaf(node: BBTreeNode, point_id: int):
    """Exhaustive leaf scan fallback."""
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            if point_id in current.point_ids:
                return current
        else:
            if current.left is not None:
                stack.append(current.left)
            if current.right is not None:
                stack.append(current.right)
    return None
