"""Dynamic updates for BB-trees (the paper's future-work extension).

The paper closes by noting BB-forest "support[ing] inserting or deleting
large-scale data more efficiently" as future work.  This module provides
that capability at the tree level:

* :func:`insert_point` -- descend to the child whose center is nearest
  (by the tree's divergence), inflating every ball on the path so the
  covering invariant holds, append to the reached leaf, and re-split the
  leaf by two-means when it exceeds capacity.
* :func:`delete_point` -- remove a point id from its leaf.  Ball radii
  are left untouched (they remain valid covers, merely conservative), so
  deletion never breaks search correctness; a periodic rebuild restores
  tightness.

Both operations preserve the invariants the searches rely on: every
node's ball covers all points in its subtree, and every point id appears
in exactly one leaf.
"""

from __future__ import annotations

import numpy as np

from ..clustering.bregman_kmeans import bregman_kmeans
from ..exceptions import InvalidParameterError, StorageError
from ..geometry.ball import BregmanBall
from .node import BBTreeNode
from .tree import BBTree

__all__ = ["insert_point", "delete_point"]


def insert_point(tree: BBTree, point: np.ndarray, point_id: int) -> None:
    """Insert ``point`` with id ``point_id`` into a built tree.

    The point is also appended to the tree's in-memory point storage so
    subsequent leaf-level evaluations and rebuild-splits see it.
    """
    root = tree._require_built()
    point = np.asarray(point, dtype=float)
    if point.shape[0] != tree._points.shape[1]:
        raise InvalidParameterError("point dimensionality mismatch")
    if int(point_id) in tree._row_of:
        raise InvalidParameterError(f"point id {point_id} already present")

    # Register the new point in the tree's storage.
    row = tree._points.shape[0]
    tree._points = np.vstack([tree._points, point[None, :]])
    tree._ids = np.concatenate([tree._ids, [int(point_id)]])
    tree._row_of[int(point_id)] = row

    node = root
    while True:
        _inflate(tree, node, point)
        if node.is_leaf:
            node.point_ids = np.concatenate([node.point_ids, [int(point_id)]])
            if node.point_ids.shape[0] > tree.leaf_capacity:
                _split_leaf(tree, node)
            return
        # Descend to the child with the nearer center (divergence to
        # center, matching the construction's assignment rule).
        left, right = node.left, node.right
        d_left = tree.divergence.divergence(point, left.ball.center)
        d_right = tree.divergence.divergence(point, right.ball.center)
        node = left if d_left <= d_right else right


def delete_point(tree: BBTree, point_id: int) -> None:
    """Remove ``point_id`` from the tree.

    The point remains in the in-memory storage array (ids are the source
    of truth); balls keep their radii, staying valid covers.
    """
    root = tree._require_built()
    if int(point_id) not in tree._row_of:
        raise StorageError(f"point id {point_id} not in tree")

    target_row = tree._row_of[int(point_id)]
    point = tree._points[target_row]
    # Walk down guided by ball membership; fall back to exhaustive leaf
    # scan if the geometric walk misses (possible after many updates).
    leaf = _find_leaf(tree, root, point, int(point_id))
    if leaf is None:
        leaf = _scan_for_leaf(root, int(point_id))
    if leaf is None:  # pragma: no cover - defended by _row_of check
        raise StorageError(f"point id {point_id} not found in any leaf")
    leaf.point_ids = leaf.point_ids[leaf.point_ids != int(point_id)]
    del tree._row_of[int(point_id)]


def _inflate(tree: BBTree, node: BBTreeNode, point: np.ndarray) -> None:
    """Grow the node's ball (if needed) to cover ``point``."""
    dist = tree.divergence.divergence(point, node.ball.center)
    if dist > node.ball.radius:
        node.ball = BregmanBall(center=node.ball.center, radius=dist)


def _split_leaf(tree: BBTree, leaf: BBTreeNode) -> None:
    """Split an overfull leaf into two children by Bregman two-means."""
    rows = np.array([tree._row_of[int(pid)] for pid in leaf.point_ids])
    subset = tree._points[rows]
    result = bregman_kmeans(tree.divergence, subset, k=2, rng=tree.rng, max_iter=25)
    left_mask = result.labels == 0
    if left_mask.all() or not left_mask.any():
        half = rows.shape[0] // 2
        left_mask = np.zeros(rows.shape[0], dtype=bool)
        left_mask[:half] = True

    def _make_child(mask: np.ndarray) -> BBTreeNode:
        ids = leaf.point_ids[mask]
        ball = BregmanBall.covering(tree.divergence, subset[mask])
        return BBTreeNode(ball=ball, point_ids=ids, depth=leaf.depth + 1)

    leaf.left = _make_child(left_mask)
    leaf.right = _make_child(~left_mask)
    leaf.point_ids = None  # becomes internal


def _find_leaf(tree: BBTree, node: BBTreeNode, point: np.ndarray, point_id: int):
    """Geometric walk to the leaf holding ``point_id`` (None if missed)."""
    if node.is_leaf:
        return node if point_id in node.point_ids else None
    for child in (node.left, node.right):
        if child is None:
            continue
        if child.ball.contains(tree.divergence, point):
            found = _find_leaf(tree, child, point, point_id)
            if found is not None:
                return found
    return None


def _scan_for_leaf(node: BBTreeNode, point_id: int):
    """Exhaustive leaf scan fallback."""
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            if point_id in current.point_ids:
                return current
        else:
            if current.left is not None:
                stack.append(current.left)
            if current.right is not None:
                stack.append(current.right)
    return None
