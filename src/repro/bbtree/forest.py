"""BB-forest: one BB-tree per partitioned subspace, sharing a disk layout.

Paper Section 6: after dimensionality partitioning, a BB-tree is built in
a randomly selected subspace and the full high-dimensional points are
written to disk clustered by that tree's leaf order; the remaining trees
store the same addresses in their leaves.  Because PCCP makes clusters in
different subspaces similar, range queries in different subspaces then
touch largely the same pages -- the per-query page deduplication in
:class:`~repro.storage.io_stats.DiskAccessTracker` turns that overlap
into measured I/O savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..divergences.base import DecomposableBregmanDivergence
from ..exceptions import InvalidParameterError, NotFittedError
from ..partitioning.scheme import Partitioning
from .tree import BatchRangeResult, BBTree, RangeResult

__all__ = ["BBForest", "ForestRangeStats"]


@dataclass
class ForestRangeStats:
    """Diagnostics for one multi-subspace range query."""

    per_subspace_candidates: List[int]
    union_candidates: int
    leaves_visited: int


class BBForest:
    """M BB-trees over the M subspaces of a partitioning.

    Parameters
    ----------
    divergence:
        The full-space decomposable divergence; each tree uses its
        restriction to the subspace dimensions.
    partitioning:
        The dimension partitioning (from :mod:`repro.partitioning`).
    leaf_capacity:
        Per-tree leaf capacity.
    rng:
        Randomness for tree construction and seed-subspace choice.
    """

    def __init__(
        self,
        divergence: DecomposableBregmanDivergence,
        partitioning: Partitioning,
        leaf_capacity: int = 64,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.divergence = divergence
        self.partitioning = partitioning
        self.leaf_capacity = int(leaf_capacity)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.trees: List[BBTree] = []
        self.layout_order: np.ndarray | None = None
        self.seed_subspace: int | None = None

    def build(self, points: np.ndarray) -> "BBForest":
        """Build all M trees and derive the shared disk layout.

        The layout order is the leaf order of the tree built on a
        randomly chosen seed subspace (paper Section 6).
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        m = self.partitioning.n_partitions
        self.seed_subspace = int(self.rng.integers(m))
        self.trees = [None] * m  # type: ignore[list-item]

        seed_dims = self.partitioning.subspaces[self.seed_subspace]
        seed_tree = BBTree(
            self.divergence.restrict(seed_dims),
            leaf_capacity=self.leaf_capacity,
            rng=self.rng,
        ).build(points[:, seed_dims])
        self.trees[self.seed_subspace] = seed_tree
        self.layout_order = seed_tree.leaf_order()

        for i, dims in enumerate(self.partitioning.subspaces):
            if i == self.seed_subspace:
                continue
            self.trees[i] = BBTree(
                self.divergence.restrict(dims),
                leaf_capacity=self.leaf_capacity,
                rng=self.rng,
            ).build(points[:, dims])
        return self

    def _require_built(self) -> List[BBTree]:
        if not self.trees or self.layout_order is None:
            raise NotFittedError("BBForest.build() must be called before searching")
        return self.trees

    def range_union(
        self,
        query_subvectors: Sequence[np.ndarray],
        radii: Sequence[float],
        point_filter: bool = False,
    ) -> tuple[np.ndarray, ForestRangeStats]:
        """Union of per-subspace range-query candidates (filter step).

        ``query_subvectors[i]`` and ``radii[i]`` address tree ``i``; the
        union of the M candidate sets is Theorem 3's final candidate set.
        """
        trees = self._require_built()
        per_counts: List[int] = []
        chunks: List[np.ndarray] = []
        leaves = 0
        for tree, sub_query, radius in zip(trees, query_subvectors, radii):
            result: RangeResult = tree.range_query(sub_query, radius, point_filter=point_filter)
            per_counts.append(int(result.point_ids.size))
            leaves += result.leaves_visited
            if result.point_ids.size:
                chunks.append(result.point_ids)
        union = (
            np.unique(np.concatenate(chunks)) if chunks else np.empty(0, dtype=int)
        )
        stats = ForestRangeStats(
            per_subspace_candidates=per_counts,
            union_candidates=int(union.size),
            leaves_visited=leaves,
        )
        return union, stats

    def range_union_batch(
        self,
        query_submatrices: Sequence[np.ndarray],
        radii: np.ndarray,
        point_filter: bool = False,
    ) -> tuple[List[np.ndarray], List[ForestRangeStats]]:
        """Batched :meth:`range_union`: each tree traversed once per batch.

        ``query_submatrices[i]`` is the ``(B, d_i)`` stack of the batch's
        subvectors in subspace ``i`` and ``radii[:, i]`` their range
        radii.  Returns per-query candidate unions and per-query stats.
        """
        trees = self._require_built()
        radii = np.asarray(radii, dtype=float)
        b = radii.shape[0]
        m = len(trees)
        n = self.layout_order.size
        per_counts = np.zeros((b, m), dtype=int)
        leaves = np.zeros(b, dtype=int)
        chunks: List[List[np.ndarray]] = [[] for _ in range(b)]
        for i, (tree, sub_queries) in enumerate(zip(trees, query_submatrices)):
            result: BatchRangeResult = tree.range_query_batch(
                sub_queries, radii[:, i], point_filter=point_filter
            )
            leaves += result.leaves_visited
            for q, ids in enumerate(result.point_ids):
                per_counts[q, i] = ids.size
                if ids.size:
                    chunks[q].append(ids)
        # Union by id-membership mask: O(n) per query and already sorted,
        # cheaper than sort-based np.unique on the concatenated chunks.
        member = np.zeros(n, dtype=bool)
        unions = []
        for parts in chunks:
            if not parts:
                unions.append(np.empty(0, dtype=int))
                continue
            member[:] = False
            for ids in parts:
                member[ids] = True
            unions.append(np.flatnonzero(member))
        stats = [
            ForestRangeStats(
                per_subspace_candidates=per_counts[q].tolist(),
                union_candidates=int(unions[q].size),
                leaves_visited=int(leaves[q]),
            )
            for q in range(b)
        ]
        return unions, stats

    def extended(self, points: np.ndarray) -> "BBForest":
        """A new forest over ``points`` (the old points plus appended rows).

        Extend-merge path: every tree is cloned via
        :meth:`~repro.bbtree.tree.BBTree.extended` with the appended rows
        inserted, the seed-subspace choice is preserved, and the shared
        disk layout keeps the old order with the new logical ids appended
        (matching :meth:`~repro.storage.datastore.DataStore.extended`).
        The receiver is never mutated -- pinned snapshots keep searching
        it -- and its rng state does not advance (clones draw from child
        streams).
        """
        self._require_built()
        points = np.atleast_2d(np.asarray(points, dtype=float))
        n_old = self.layout_order.size
        if points.shape[0] < n_old:
            raise InvalidParameterError(
                "extended() expects the old points plus appended rows"
            )
        new_ids = np.arange(n_old, points.shape[0])
        forest = BBForest(
            self.divergence,
            self.partitioning,
            leaf_capacity=self.leaf_capacity,
            rng=self.rng,
        )
        forest.seed_subspace = self.seed_subspace
        forest.trees = [
            tree.extended(points[np.ix_(new_ids, dims)], new_ids)
            for tree, dims in zip(self.trees, self.partitioning.subspaces)
        ]
        forest.layout_order = np.concatenate([self.layout_order, new_ids])
        return forest

    def shard_assignment(self, n_shards: int) -> np.ndarray:
        """Per-point shard ids: seed-tree leaves striped round-robin.

        Striping whole leaves (rather than raw layout positions) keeps
        each cluster's points on one disk -- a leaf fetch stays local to
        a single shard -- while spreading consecutive clusters across
        shards so a batch's candidate fan-out load-balances.  Returns an
        array indexed by logical point id.
        """
        self._require_built()
        if n_shards < 1:
            raise InvalidParameterError(f"n_shards must be >= 1, got {n_shards}")
        assignment = np.empty(self.layout_order.size, dtype=int)
        seed_tree = self.trees[self.seed_subspace]
        for i, leaf in enumerate(seed_tree.leaves()):
            assignment[leaf.point_ids] = i % n_shards
        return assignment

    def count_nodes(self) -> int:
        """Total nodes across all trees."""
        return sum(tree.count_nodes() for tree in self._require_built())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "built" if self.trees else "empty"
        return (
            f"BBForest(M={self.partitioning.n_partitions}, "
            f"leaf_capacity={self.leaf_capacity}, {state})"
        )
