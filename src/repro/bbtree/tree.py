"""Bregman-Ball tree (Cayton, ICML 2008) with range queries (NIPS 2009).

The tree hierarchically decomposes a point set by recursive Bregman
two-means.  Every node covers its subtree's points with a Bregman ball
(center = Bregman centroid, radius = max divergence to center), so the
dual-geodesic projection of :mod:`repro.geometry.projection` yields a
certified lower bound on the divergence from any subtree point to a
query.  Two search modes:

* :meth:`BBTree.knn` -- exact branch-and-bound k-nearest-neighbour search
  (the paper's "BBT" baseline when run on the full-dimensional data with
  a disk-backed fetcher).
* :meth:`BBTree.range_query` -- all points within a divergence radius of
  the query, at cluster granularity (the filter step of BrePartition) or
  exact point granularity (``point_filter=True``).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..clustering.bregman_kmeans import bregman_kmeans
from ..divergences.base import DecomposableBregmanDivergence
from ..exceptions import InvalidParameterError, NotFittedError
from ..geometry.ball import BregmanBall
from ..geometry.projection import (
    BatchRangeProber,
    ball_intersects_range,
    min_divergence_to_ball,
)
from .node import BBTreeNode

__all__ = ["BBTree", "KnnStats", "RangeResult", "BatchRangeResult"]

#: tie-breaker for the best-first heap (nodes are not comparable).
_heap_counter = itertools.count()


@dataclass
class KnnStats:
    """Diagnostics for one kNN search."""

    nodes_examined: int = 0
    leaves_visited: int = 0
    points_evaluated: int = 0


@dataclass
class RangeResult:
    """Outcome of a range query."""

    point_ids: np.ndarray
    leaves_visited: int = 0
    nodes_examined: int = 0


@dataclass
class BatchRangeResult:
    """Outcome of a batched range query over ``B`` queries.

    ``point_ids[b]`` is query ``b``'s candidate set; ``leaves_visited[b]``
    counts the leaves that reached query ``b``.  ``nodes_examined`` counts
    *distinct* node visits of the shared traversal -- the amortisation a
    batch buys over ``B`` independent traversals.
    """

    point_ids: List[np.ndarray]
    leaves_visited: np.ndarray
    nodes_examined: int = 0


class BBTree:
    """A Bregman-Ball tree over a (sub)space of the dataset.

    Parameters
    ----------
    divergence:
        Decomposable divergence measuring (sub)vector dissimilarity.
    leaf_capacity:
        Maximum points per leaf (paper Section 5.1 treats n/C as roughly
        constant; benchmarks size this from the page geometry).
    rng:
        Randomness for the two-means splits.
    lb_max_iter, lb_tol:
        Bisection budget for node lower bounds; any budget still yields
        certified (if looser) bounds.
    """

    def __init__(
        self,
        divergence: DecomposableBregmanDivergence,
        leaf_capacity: int = 64,
        rng: np.random.Generator | None = None,
        lb_max_iter: int = 40,
        lb_tol: float = 1e-7,
    ) -> None:
        if leaf_capacity < 1:
            raise InvalidParameterError("leaf_capacity must be >= 1")
        self.divergence = divergence
        self.leaf_capacity = int(leaf_capacity)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.lb_max_iter = int(lb_max_iter)
        self.lb_tol = float(lb_tol)
        self.root: Optional[BBTreeNode] = None
        self._points: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def build(self, points: np.ndarray, point_ids: np.ndarray | None = None) -> "BBTree":
        """Build the tree over ``points`` (ids default to row numbers)."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        n = points.shape[0]
        if n == 0:
            raise InvalidParameterError("cannot build a BB-tree over zero points")
        if point_ids is None:
            point_ids = np.arange(n)
        point_ids = np.asarray(point_ids, dtype=int)
        if point_ids.shape[0] != n:
            raise InvalidParameterError("point_ids must match the number of points")
        self._points = points
        self._ids = point_ids
        # Index points by storage row for leaf-level evaluation.
        self._row_of = {int(pid): row for row, pid in enumerate(point_ids)}
        # Storage rows freed by deletes, reusable by later inserts (see
        # repro.bbtree.dynamic).
        self._free_rows: List[int] = []
        self.root = self._build_node(np.arange(n), depth=0)
        return self

    def _build_node(self, rows: np.ndarray, depth: int) -> BBTreeNode:
        assert self._points is not None
        subset = self._points[rows]
        ball = BregmanBall.covering(self.divergence, subset)
        if rows.shape[0] <= self.leaf_capacity:
            return BBTreeNode(ball=ball, point_ids=self._ids[rows], depth=depth)

        result = bregman_kmeans(self.divergence, subset, k=2, rng=self.rng, max_iter=25)
        left_mask = result.labels == 0
        # Degenerate split (duplicates / collapsed clusters): halve arbitrarily
        # so construction always terminates.
        if left_mask.all() or not left_mask.any():
            half = rows.shape[0] // 2
            left_mask = np.zeros(rows.shape[0], dtype=bool)
            left_mask[:half] = True
        left = self._build_node(rows[left_mask], depth + 1)
        right = self._build_node(rows[~left_mask], depth + 1)
        return BBTreeNode(ball=ball, left=left, right=right, depth=depth)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def _require_built(self) -> BBTreeNode:
        if self.root is None:
            raise NotFittedError("BBTree.build() must be called before searching")
        return self.root

    def leaves(self) -> List[BBTreeNode]:
        """Leaf nodes in DFS order (defines the disk layout)."""
        root = self._require_built()
        out: List[BBTreeNode] = []
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(node)
            else:
                # Push right first so left is processed first (stable DFS).
                if node.right is not None:
                    stack.append(node.right)
                if node.left is not None:
                    stack.append(node.left)
        return out

    def leaf_order(self) -> np.ndarray:
        """Point ids concatenated in leaf DFS order (clustered layout)."""
        return np.concatenate([leaf.point_ids for leaf in self.leaves()])

    def collect_ids(self) -> np.ndarray:
        """Every live point id, ascending (enumerated from the leaves).

        After dynamic updates this must agree with ``_row_of`` -- each
        live id in exactly one leaf, deleted ids in none.
        """
        parts = [leaf.point_ids for leaf in self.leaves() if leaf.point_ids.size]
        if not parts:
            return np.empty(0, dtype=int)
        return np.sort(np.concatenate(parts))

    def count_nodes(self) -> int:
        """Total number of nodes."""
        return self._require_built().count_nodes()

    def height(self) -> int:
        """Tree height."""
        return self._require_built().height()

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def _lower_bound(self, node: BBTreeNode, query: np.ndarray) -> float:
        return min_divergence_to_ball(
            self.divergence,
            node.ball.center,
            node.ball.radius,
            query,
            tol=self.lb_tol,
            max_iter=self.lb_max_iter,
        )

    def knn(
        self,
        query: np.ndarray,
        k: int,
        fetcher: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, KnnStats]:
        """Exact k-nearest neighbours by best-first branch and bound.

        Parameters
        ----------
        query:
            Query vector in this tree's (sub)space.
        k:
            Number of neighbours.
        fetcher:
            Optional ``ids -> vectors`` callable used to materialise leaf
            points; pass a :meth:`DataStore.fetch <repro.storage.datastore.DataStore.fetch>`
            bound method to charge simulated I/O (the disk-resident "BBT"
            baseline).  Defaults to the in-memory build-time points.

        Returns
        -------
        (ids, divergences, stats) sorted by increasing divergence.
        """
        root = self._require_built()
        query = np.asarray(query, dtype=float)
        if k < 1:
            raise InvalidParameterError("k must be >= 1")
        stats = KnnStats()

        # Max-heap of current best (negated divergence, id).
        best: list[tuple[float, int]] = []
        frontier: list[tuple[float, int, BBTreeNode]] = [
            (self._lower_bound(root, query), next(_heap_counter), root)
        ]
        while frontier:
            lb, _, node = heapq.heappop(frontier)
            stats.nodes_examined += 1
            if len(best) == k and lb >= -best[0][0]:
                break
            if node.is_leaf:
                stats.leaves_visited += 1
                ids = node.point_ids
                if fetcher is not None:
                    vectors = fetcher(ids)
                else:
                    rows = np.array([self._row_of[int(pid)] for pid in ids])
                    vectors = self._points[rows]
                dists = self.divergence.batch_divergence(vectors, query)
                stats.points_evaluated += len(ids)
                for dist, pid in zip(dists, ids):
                    entry = (-float(dist), int(pid))
                    if len(best) < k:
                        heapq.heappush(best, entry)
                    elif entry > best[0]:
                        heapq.heapreplace(best, entry)
            else:
                for child in (node.left, node.right):
                    if child is None:
                        continue
                    child_lb = self._lower_bound(child, query)
                    if len(best) < k or child_lb < -best[0][0]:
                        heapq.heappush(frontier, (child_lb, next(_heap_counter), child))

        ordered = sorted(((-neg, pid) for neg, pid in best))
        ids = np.array([pid for _, pid in ordered], dtype=int)
        dists = np.array([dist for dist, _ in ordered], dtype=float)
        return ids, dists, stats

    def range_query(
        self,
        query: np.ndarray,
        radius: float,
        point_filter: bool = False,
    ) -> RangeResult:
        """All candidate points with ``D(x, query) <= radius``.

        With ``point_filter=False`` (paper semantics) the result is every
        point in a leaf whose ball may intersect the range -- a superset,
        at cluster granularity, matching the candidate sets BrePartition
        fetches from disk.  With ``point_filter=True`` the in-memory
        subspace points are checked exactly (used by tests and the
        leaf-exact ablation).
        """
        root = self._require_built()
        query = np.asarray(query, dtype=float)
        if radius < 0.0:
            return RangeResult(point_ids=np.empty(0, dtype=int))
        result_ids: list[np.ndarray] = []
        stats_nodes = 0
        stats_leaves = 0
        stack = [root]
        while stack:
            node = stack.pop()
            stats_nodes += 1
            # Early-exit intersection test (Cayton 2009): cheaper than the
            # full projection and still sound.
            if not ball_intersects_range(
                self.divergence,
                node.ball.center,
                node.ball.radius,
                query,
                radius,
                max_iter=self.lb_max_iter,
            ):
                continue
            if node.is_leaf:
                stats_leaves += 1
                ids = node.point_ids
                if point_filter:
                    rows = np.array([self._row_of[int(pid)] for pid in ids])
                    dists = self.divergence.batch_divergence(self._points[rows], query)
                    ids = ids[dists <= radius]
                if len(ids):
                    result_ids.append(ids)
            else:
                if node.left is not None:
                    stack.append(node.left)
                if node.right is not None:
                    stack.append(node.right)
        ids = (
            np.concatenate(result_ids)
            if result_ids
            else np.empty(0, dtype=int)
        )
        return RangeResult(point_ids=ids, leaves_visited=stats_leaves, nodes_examined=stats_nodes)

    def range_query_batch(
        self,
        queries: np.ndarray,
        radii: np.ndarray,
        point_filter: bool = False,
    ) -> BatchRangeResult:
        """Batched :meth:`range_query`: one shared traversal for ``B`` queries.

        The tree is walked level-synchronously: all (node, query) ball
        tests of a level run as one fused bisection
        (:meth:`~repro.geometry.projection.BatchRangeProber.intersects_pairs`),
        so the traversal's Python overhead is per level rather than per
        node per query.  Queries whose range provably misses a ball drop
        out of that subtree, so pruning composes with the amortisation.
        """
        root = self._require_built()
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        radii = np.asarray(radii, dtype=float)
        b = queries.shape[0]
        if radii.shape != (b,):
            raise InvalidParameterError("radii must supply one radius per query")

        prober = BatchRangeProber(
            self.divergence, queries, radii, max_iter=self.lb_max_iter
        )
        chunks: List[List[np.ndarray]] = [[] for _ in range(b)]
        leaves = np.zeros(b, dtype=int)
        nodes_examined = 0
        initial = np.flatnonzero(radii >= 0.0)
        frontier: list[tuple[BBTreeNode, np.ndarray]] = (
            [(root, initial)] if initial.size else []
        )
        while frontier:
            nodes_examined += len(frontier)
            centers = np.stack([node.ball.center for node, _ in frontier])
            ball_radii = np.array([node.ball.radius for node, _ in frontier])
            sizes = [active.size for _, active in frontier]
            pair_node = np.repeat(np.arange(len(frontier)), sizes)
            pair_query = np.concatenate([active for _, active in frontier])
            keep = prober.intersects_pairs(centers, ball_radii, pair_node, pair_query)

            next_frontier: list[tuple[BBTreeNode, np.ndarray]] = []
            offset = 0
            for (node, active), size in zip(frontier, sizes):
                survivors = active[keep[offset : offset + size]]
                offset += size
                if survivors.size == 0:
                    continue
                if node.is_leaf:
                    ids = node.point_ids
                    leaves[survivors] += 1
                    if point_filter:
                        rows = np.array([self._row_of[int(pid)] for pid in ids])
                        leaf_points = self._points[rows]
                        # Evaluate through the same batch_divergence the
                        # scalar range_query uses (divergences may
                        # override it), so boundary rounding -- and hence
                        # the candidate sets -- match bitwise.
                        for qi in survivors:
                            dists = self.divergence.batch_divergence(
                                leaf_points, queries[qi]
                            )
                            selected = ids[dists <= radii[qi]]
                            if selected.size:
                                chunks[int(qi)].append(selected)
                    else:
                        for qi in survivors:
                            chunks[int(qi)].append(ids)
                else:
                    if node.left is not None:
                        next_frontier.append((node.left, survivors))
                    if node.right is not None:
                        next_frontier.append((node.right, survivors))
            frontier = next_frontier
        point_ids = [
            np.concatenate(parts) if parts else np.empty(0, dtype=int)
            for parts in chunks
        ]
        return BatchRangeResult(
            point_ids=point_ids, leaves_visited=leaves, nodes_examined=nodes_examined
        )

    # ------------------------------------------------------------------
    # dynamic updates (paper future work; see repro.bbtree.dynamic)
    # ------------------------------------------------------------------

    def insert(self, point: np.ndarray, point_id: int) -> None:
        """Insert a new point into the built tree (covering invariant kept)."""
        from .dynamic import insert_point

        insert_point(self, point, point_id)

    def delete(self, point_id: int) -> None:
        """Remove a point id from the built tree."""
        from .dynamic import delete_point

        delete_point(self, point_id)

    def extended(self, points: np.ndarray, new_ids: np.ndarray) -> "BBTree":
        """A new tree with extra points inserted; the receiver is untouched.

        The extend-merge building block: see
        :func:`repro.bbtree.dynamic.extend_tree`.
        """
        from .dynamic import extend_tree

        return extend_tree(self, points, new_ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "built" if self.root is not None else "empty"
        return f"BBTree({self.divergence.name}, leaf_capacity={self.leaf_capacity}, {state})"
