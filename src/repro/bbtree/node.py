"""Nodes of the Bregman-Ball tree.

Mirrors the paper's Fig. 5: intermediate nodes store their cluster's
center and radius; leaf nodes additionally store the ids (and, once a
:class:`~repro.storage.datastore.DataStore` layout exists, the disk
addresses) of the points in their cluster.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..geometry.ball import BregmanBall

__all__ = ["BBTreeNode"]


class BBTreeNode:
    """A node of a BB-tree: a Bregman ball plus children or point ids."""

    __slots__ = ("ball", "left", "right", "point_ids", "depth")

    def __init__(
        self,
        ball: BregmanBall,
        left: Optional["BBTreeNode"] = None,
        right: Optional["BBTreeNode"] = None,
        point_ids: Optional[np.ndarray] = None,
        depth: int = 0,
    ) -> None:
        self.ball = ball
        self.left = left
        self.right = right
        self.point_ids = point_ids
        self.depth = depth

    @property
    def is_leaf(self) -> bool:
        """Whether the node holds points directly."""
        return self.point_ids is not None

    def count_nodes(self) -> int:
        """Total nodes in the subtree (for index statistics)."""
        total = 1
        if self.left is not None:
            total += self.left.count_nodes()
        if self.right is not None:
            total += self.right.count_nodes()
        return total

    def height(self) -> int:
        """Height of the subtree (leaf = 0)."""
        if self.is_leaf:
            return 0
        heights = []
        if self.left is not None:
            heights.append(self.left.height())
        if self.right is not None:
            heights.append(self.right.height())
        return 1 + max(heights, default=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = f"leaf[{len(self.point_ids)}]" if self.is_leaf else "internal"
        return f"BBTreeNode({kind}, depth={self.depth}, {self.ball!r})"
