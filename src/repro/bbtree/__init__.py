"""Bregman-Ball trees (Cayton 2008/2009) and the paper's BB-forest."""

from .dynamic import delete_point, insert_point
from .forest import BBForest, ForestRangeStats
from .node import BBTreeNode
from .tree import BatchRangeResult, BBTree, KnnStats, RangeResult

__all__ = [
    "BBTree",
    "BBTreeNode",
    "BBForest",
    "ForestRangeStats",
    "KnnStats",
    "RangeResult",
    "BatchRangeResult",
    "insert_point",
    "delete_point",
]
