"""Bregman divergences: the distance functions BrePartition indexes.

Public surface:

* :class:`~repro.divergences.base.BregmanDivergence` and
  :class:`~repro.divergences.base.DecomposableBregmanDivergence` -- the
  abstractions (generator, gradient, divergence, dual geodesics).
* Concrete divergences from the paper's Section 3.1: squared Euclidean /
  Mahalanobis, Itakura-Saito (= Burg entropy), exponential distance,
  generalized & simplex KL, Shannon entropy, p-norm generators.
* :func:`get_divergence` -- name-based lookup used by benchmarks and CLI.
"""

from .base import (
    OPEN_UNIT_INTERVAL,
    POSITIVE_REALS,
    REALS,
    BregmanDivergence,
    DecomposableBregmanDivergence,
    Domain,
    RefinementConditioner,
)
from .exponential import ExponentialDistance
from .itakura_saito import BurgEntropy, ItakuraSaito
from .kl import GeneralizedKL, SimplexKL
from .mahalanobis import DiagonalMahalanobis, MahalanobisDivergence
from .norms import PNormDivergence, ShannonEntropy
from .registry import available_divergences, get_divergence, register_divergence
from .squared_euclidean import SquaredEuclidean

__all__ = [
    "BregmanDivergence",
    "DecomposableBregmanDivergence",
    "RefinementConditioner",
    "Domain",
    "REALS",
    "POSITIVE_REALS",
    "OPEN_UNIT_INTERVAL",
    "SquaredEuclidean",
    "DiagonalMahalanobis",
    "MahalanobisDivergence",
    "ItakuraSaito",
    "BurgEntropy",
    "ExponentialDistance",
    "GeneralizedKL",
    "SimplexKL",
    "ShannonEntropy",
    "PNormDivergence",
    "get_divergence",
    "register_divergence",
    "available_divergences",
]
