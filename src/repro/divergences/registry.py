"""Name-based registry for divergence classes.

The benchmark harness, CLI and dataset definitions refer to divergences by
stable string names (the paper's Table 4 "Measure" column uses "ED" and
"ISD"); this module resolves those names to instances.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..exceptions import InvalidParameterError
from .base import BregmanDivergence
from .exponential import ExponentialDistance
from .itakura_saito import ItakuraSaito
from .kl import GeneralizedKL, SimplexKL
from .norms import PNormDivergence, ShannonEntropy
from .squared_euclidean import SquaredEuclidean

__all__ = ["register_divergence", "get_divergence", "available_divergences"]

_FACTORIES: Dict[str, Callable[[], BregmanDivergence]] = {}


def register_divergence(name: str, factory: Callable[[], BregmanDivergence]) -> None:
    """Register a zero-argument divergence factory under ``name``.

    Re-registering an existing name replaces the previous factory, which
    lets applications override a built-in with a tuned variant.
    """
    _FACTORIES[name.lower()] = factory


def get_divergence(name: str) -> BregmanDivergence:
    """Instantiate the divergence registered under ``name``.

    Accepts the paper's abbreviations ("ED", "ISD", "SED") as well as the
    full module names ("exponential", "itakura_saito", ...).
    """
    key = name.lower()
    if key not in _FACTORIES:
        raise InvalidParameterError(
            f"unknown divergence {name!r}; available: {sorted(_FACTORIES)}"
        )
    return _FACTORIES[key]()


def available_divergences() -> list[str]:
    """Sorted list of registered divergence names."""
    return sorted(_FACTORIES)


# Built-ins, including the paper's abbreviations.
register_divergence("squared_euclidean", SquaredEuclidean)
register_divergence("sed", SquaredEuclidean)
register_divergence("itakura_saito", ItakuraSaito)
register_divergence("isd", ItakuraSaito)
register_divergence("is", ItakuraSaito)
register_divergence("exponential", ExponentialDistance)
register_divergence("ed", ExponentialDistance)
register_divergence("generalized_kl", GeneralizedKL)
register_divergence("gkl", GeneralizedKL)
register_divergence("simplex_kl", SimplexKL)
register_divergence("shannon_entropy", ShannonEntropy)
register_divergence("p_norm", PNormDivergence)
