"""Exponential distance (``phi(t) = e^t``), named "ED" in the paper.

Section 3.1:

    D_f(x, y) = sum_j ( e^{x_j} - (x_j - y_j + 1) e^{y_j} )

The paper evaluates this divergence on the Audio, Deep, Sift and Normal
datasets.  The generator is defined on all of R, but coordinates should
be kept in a moderate range (|t| well below ~700) to avoid ``exp``
overflow; :meth:`ExponentialDistance.validate_domain` enforces a
configurable cap.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DomainError
from .base import (
    REALS,
    DecomposableBregmanDivergence,
    RefinementConditioner,
    pair_contract,
)

__all__ = ["ExponentialDistance"]

#: exp() on float64 overflows just above 709; stay far below.
_DEFAULT_MAX_ABS = 100.0

#: cap on the conditioner shift so its e^shift output factor stays finite.
_MAX_SHIFT = 700.0


class ExponentialDistance(DecomposableBregmanDivergence):
    """``D(x, y) = sum(e^x - (x - y + 1) e^y)`` on bounded real vectors."""

    name = "exponential"
    domain = REALS

    def __init__(self, max_abs: float = _DEFAULT_MAX_ABS) -> None:
        self.max_abs = float(max_abs)

    def refinement_conditioner(self, points: np.ndarray) -> RefinementConditioner:
        # Additive shifts rescale the divergence exactly:
        # D(x - s, q - s) = e^{-s} D(x, q) for any scalar s, so evaluating
        # the expansion kernel on shifted inputs and multiplying by e^s
        # recovers the same values.  Subtracting the dataset *max* (the
        # softmax clamp) puts the dominant coordinates near zero: their
        # e^{t - s} factors stay <= 1 (no overflow at any max_abs) and the
        # linear coefficients |t - s| of the cross term shrink from
        # O(max|t|) to O(spread), which is where the raw kernel loses
        # accuracy on offset data.  A per-dimension shift would NOT fold
        # back into one output factor (each dimension would rescale by its
        # own e^{s_j}), hence the scalar.
        points = np.atleast_2d(np.asarray(points, dtype=float))
        shift = min(float(points.max()), _MAX_SHIFT)
        return RefinementConditioner(shift=shift, factor=np.exp(shift))

    def phi(self, t: np.ndarray) -> np.ndarray:
        return np.exp(np.asarray(t, dtype=float))

    def phi_prime(self, t: np.ndarray) -> np.ndarray:
        return np.exp(np.asarray(t, dtype=float))

    def phi_prime_inverse(self, s: np.ndarray) -> np.ndarray:
        # phi' = exp maps R onto (0, inf); inverse is log.
        return np.log(np.asarray(s, dtype=float))

    def validate_domain(self, x: np.ndarray, what: str = "vector") -> None:
        super().validate_domain(x, what)
        x = np.asarray(x, dtype=float)
        if np.any(np.abs(x) > self.max_abs):
            raise DomainError(
                f"{what} has coordinates with |t| > {self.max_abs}; "
                "exponential distance would overflow"
            )

    def divergence(self, x: np.ndarray, y: np.ndarray) -> float:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        ey = np.exp(y)
        value = float(np.sum(np.exp(x) - (x - y + 1.0) * ey))
        return value if value > 0.0 else 0.0

    def batch_divergence(self, points: np.ndarray, y: np.ndarray) -> np.ndarray:
        # Direct form: well-conditioned (the reference kernel;
        # cross_divergence is the fast expansion).
        points = np.atleast_2d(np.asarray(points, dtype=float))
        y = np.asarray(y, dtype=float)
        ey = np.exp(y)
        values = np.sum(np.exp(points) - (points - y + 1.0) * ey, axis=1)
        return np.maximum(values, 0.0)

    def cross_divergence(self, points: np.ndarray, queries: np.ndarray) -> np.ndarray:
        # Expansion sum(e^x - x e^q + (q - 1) e^q): the exponentials move
        # to per-point / per-query vectors; the only per-pair work is the
        # <x, e^q> contraction.
        points = np.atleast_2d(np.asarray(points, dtype=float))
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        eq = np.exp(queries)
        values = (
            np.sum(np.exp(points), axis=1)[:, None]
            - np.einsum("nj,bj->nb", points, eq)
            + np.einsum("bj,bj->b", queries - 1.0, eq)[None, :]
        )
        return np.maximum(values, 0.0)

    # grouped kernel: mirrors the e^x - <x, e^q> + <q-1, e^q> expansion
    # above term-for-term so pair values match the dense matrix bitwise.
    def _grouped_terms(self, points: np.ndarray, queries: np.ndarray) -> tuple:
        eq = np.exp(queries)
        return (
            np.sum(np.exp(points), axis=1),
            eq,
            np.einsum("bj,bj->b", queries - 1.0, eq),
        )

    def _grouped_pairs(
        self,
        terms: tuple,
        points: np.ndarray,
        queries: np.ndarray,
        point_index: np.ndarray,
        query_index: np.ndarray,
    ) -> np.ndarray:
        sum_ex, eq, qconst = terms
        return (
            sum_ex[point_index]
            - pair_contract(points, eq, point_index, query_index)
            + qconst[query_index]
        )
