"""Itakura-Saito distance (Burg-entropy generator ``phi(t) = -log t``).

Section 3.1 of the paper:

    D_f(x, y) = sum_j ( x_j / y_j - log(x_j / y_j) - 1 )

Widely used in speech processing to compare power spectra; the paper runs
it on the Fonts and Uniform datasets.  The domain is the strictly
positive orthant.
"""

from __future__ import annotations

import numpy as np

from .base import (
    POSITIVE_REALS,
    DecomposableBregmanDivergence,
    RefinementConditioner,
    pair_contract,
)

__all__ = ["ItakuraSaito", "BurgEntropy"]


class ItakuraSaito(DecomposableBregmanDivergence):
    """``D(x, y) = sum(x/y - log(x/y) - 1)`` on positive vectors."""

    name = "itakura_saito"
    domain = POSITIVE_REALS

    def refinement_conditioner(self, points: np.ndarray) -> RefinementConditioner:
        # Exact per-dimension scale invariance (D is 0-homogeneous):
        # normalising by the dataset's per-dimension mean keeps the
        # expansion kernel's log sums near zero on any magnitude mix.
        points = np.atleast_2d(np.asarray(points, dtype=float))
        return RefinementConditioner(scale=points.mean(axis=0))

    def phi(self, t: np.ndarray) -> np.ndarray:
        return -np.log(np.asarray(t, dtype=float))

    def phi_prime(self, t: np.ndarray) -> np.ndarray:
        return -1.0 / np.asarray(t, dtype=float)

    def phi_prime_inverse(self, s: np.ndarray) -> np.ndarray:
        # phi' maps (0, inf) onto (-inf, 0); the inverse is s -> -1/s.
        return -1.0 / np.asarray(s, dtype=float)

    def divergence(self, x: np.ndarray, y: np.ndarray) -> float:
        ratio = np.asarray(x, dtype=float) / np.asarray(y, dtype=float)
        value = float(np.sum(ratio - np.log(ratio) - 1.0))
        return value if value > 0.0 else 0.0

    def batch_divergence(self, points: np.ndarray, y: np.ndarray) -> np.ndarray:
        # Direct ratio form: well-conditioned (the reference kernel;
        # cross_divergence is the fast expansion).
        points = np.atleast_2d(np.asarray(points, dtype=float))
        ratio = points / np.asarray(y, dtype=float)
        values = np.sum(ratio - np.log(ratio) - 1.0, axis=1)
        return np.maximum(values, 0.0)

    def cross_divergence(self, points: np.ndarray, queries: np.ndarray) -> np.ndarray:
        # Expansion sum(x/y - log x + log y - 1): the logs move to
        # per-point / per-query vectors; the only per-pair work is the
        # <x, 1/q> contraction.
        points = np.atleast_2d(np.asarray(points, dtype=float))
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        values = (
            np.einsum("nj,bj->nb", points, 1.0 / queries)
            - np.sum(np.log(points), axis=1)[:, None]
            + np.sum(np.log(queries), axis=1)[None, :]
            - points.shape[1]
        )
        return np.maximum(values, 0.0)

    # grouped kernel: mirrors the <x, 1/q> - log x + log q - d expansion
    # above term-for-term so pair values match the dense matrix bitwise.
    def _grouped_terms(self, points: np.ndarray, queries: np.ndarray) -> tuple:
        return (
            np.sum(np.log(points), axis=1),
            1.0 / queries,
            np.sum(np.log(queries), axis=1),
        )

    def _grouped_pairs(
        self,
        terms: tuple,
        points: np.ndarray,
        queries: np.ndarray,
        point_index: np.ndarray,
        query_index: np.ndarray,
    ) -> np.ndarray:
        log_x, inv_q, log_q = terms
        return (
            pair_contract(points, inv_q, point_index, query_index)
            - log_x[point_index]
            + log_q[query_index]
            - points.shape[1]
        )


#: The Burg-entropy divergence *is* the Itakura-Saito distance; the paper
#: lists both names, so we expose the alias.
BurgEntropy = ItakuraSaito
