"""Core abstractions for Bregman divergences.

A Bregman divergence is defined by a strictly convex, differentiable
*generator* function ``f``:

    D_f(x, y) = f(x) - f(y) - <grad f(y), x - y>

The BrePartition framework additionally requires the divergence to be
*decomposable* (the paper calls this "cumulative"): splitting the
dimensions into disjoint subsets must split the divergence into a sum of
per-subset divergences.  This holds exactly when the generator is
*separable*, ``f(x) = sum_j phi(x_j)`` for a scalar convex ``phi``
(possibly with per-dimension weights).  All the divergences the paper
evaluates (squared Euclidean / diagonal Mahalanobis, Itakura-Saito,
exponential distance, generalized KL, Shannon entropy, Burg entropy,
p-norm generators) are of this form.

Two base classes are provided:

* :class:`BregmanDivergence` -- the general contract (generator, gradient,
  divergence, batched divergence, domain validation).
* :class:`DecomposableBregmanDivergence` -- the separable specialisation
  used by BrePartition.  Subclasses implement only the scalar maps
  ``phi``, ``phi_prime`` and ``phi_prime_inverse`` (all vectorised over
  NumPy arrays); everything else (divergences, gradients, dual-space
  geodesics, restriction to a dimension subset) is derived here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..exceptions import DomainError, NotDecomposableError

__all__ = [
    "Domain",
    "REALS",
    "POSITIVE_REALS",
    "OPEN_UNIT_INTERVAL",
    "RefinementConditioner",
    "BregmanDivergence",
    "DecomposableBregmanDivergence",
    "pair_contract",
]


def pair_contract(
    points: np.ndarray,
    query_rows: np.ndarray,
    point_index: np.ndarray,
    query_index: np.ndarray,
) -> np.ndarray:
    """``<points[pi], query_rows[qi]>`` per pair, via bucketed gathers.

    The sparse kernels' per-pair contraction.  Pairs sharing a query are
    contracted together: one ``(run, d)`` gather of the point rows
    against the query's single row -- no ``(P, d)`` gather of query
    vectors, which is what makes the sparse kernel memory-light.  Runs
    are detected on the fly, so the index's query-major pair lists
    contract in one call per query while arbitrary orderings stay
    correct (just slower).

    Bitwise: ``np.einsum("nj,j->n")`` reduces the contiguous ``j`` axis
    with the same accumulation order as the dense
    ``np.einsum("nj,bj->nb")`` entry, so pair values are bit-identical
    to the dense kernel's matrix however pairs are ordered or bucketed.
    """
    out = np.empty(point_index.size, dtype=float)
    if point_index.size == 0:
        return out
    bounds = np.concatenate(
        [[0], np.flatnonzero(np.diff(query_index) != 0) + 1, [point_index.size]]
    )
    for i in range(bounds.size - 1):
        lo, hi = bounds[i], bounds[i + 1]
        out[lo:hi] = np.einsum(
            "nj,j->n", points[point_index[lo:hi]], query_rows[query_index[lo]]
        )
    return out


class RefinementConditioner:
    """Input transform that keeps expansion-form kernels well-conditioned.

    The matrixised :meth:`BregmanDivergence.cross_divergence` kernels
    trade conditioning for speed (the classic ``||x||^2 - 2<x,y> +
    ||y||^2`` cancellation).  When a divergence has an exact invariance
    -- translation, per-dimension scaling, or homogeneity -- evaluating
    the kernel on transformed inputs (and rescaling the output by
    ``factor``) recovers the same mathematical values from
    better-conditioned arithmetic.  Both the single-query and blocked
    refinement paths apply the same conditioner elementwise, so their
    bitwise agreement is unaffected.

    Parameters
    ----------
    shift:
        Subtracted from every input row (translation invariance), or
        ``None``.
    scale:
        Every input row is divided by this (scale invariance /
        homogeneity), or ``None``.
    factor:
        Multiplier applied to the kernel's output values (1.0 for exact
        invariances; the homogeneity degree's scale for homogeneous
        divergences).
    """

    __slots__ = ("shift", "scale", "factor")

    def __init__(
        self,
        shift: np.ndarray | None = None,
        scale: np.ndarray | float | None = None,
        factor: float = 1.0,
    ) -> None:
        self.shift = shift
        self.scale = scale
        self.factor = float(factor)

    def transform(self, rows: np.ndarray) -> np.ndarray:
        """Condition an ``(n, d)`` array of kernel inputs."""
        if self.shift is not None:
            rows = rows - self.shift
        if self.scale is not None:
            rows = rows / self.scale
        return rows


class Domain:
    """An axis-aligned open-box domain for divergence generators.

    Parameters
    ----------
    low, high:
        Open interval bounds applied to every coordinate.  ``-inf`` /
        ``inf`` denote an unbounded side.
    name:
        Human-readable label used in error messages.
    """

    def __init__(self, low: float, high: float, name: str) -> None:
        self.low = float(low)
        self.high = float(high)
        self.name = name

    def contains(self, x: np.ndarray) -> bool:
        """Return ``True`` when every coordinate of ``x`` is inside."""
        x = np.asarray(x, dtype=float)
        if not np.all(np.isfinite(x)):
            return False
        ok_low = self.low == -np.inf or bool(np.all(x > self.low))
        ok_high = self.high == np.inf or bool(np.all(x < self.high))
        return ok_low and ok_high

    def clip(self, x: np.ndarray, margin: float = 1e-9) -> np.ndarray:
        """Project ``x`` into the domain, keeping an open-interval margin."""
        x = np.asarray(x, dtype=float)
        lo = self.low + margin if np.isfinite(self.low) else -np.inf
        hi = self.high - margin if np.isfinite(self.high) else np.inf
        return np.clip(x, lo, hi)

    def validate(self, x: np.ndarray, what: str = "vector") -> None:
        """Raise :class:`DomainError` when ``x`` is outside the domain."""
        if not self.contains(x):
            raise DomainError(
                f"{what} outside domain {self.name}: "
                f"expected coordinates in ({self.low}, {self.high})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Domain({self.name}, ({self.low}, {self.high}))"


REALS = Domain(-np.inf, np.inf, "reals")
POSITIVE_REALS = Domain(0.0, np.inf, "positive reals")
OPEN_UNIT_INTERVAL = Domain(0.0, 1.0, "open unit interval")


class BregmanDivergence(ABC):
    """Contract for a Bregman divergence ``D_f``.

    Concrete classes expose the generator ``f``, its gradient, and
    point-to-point / batch divergence evaluation.  ``name`` is a stable
    identifier used by :mod:`repro.divergences.registry`.
    """

    #: registry identifier; subclasses override.
    name: str = "bregman"

    #: whether the divergence is cumulative over dimension partitions.
    supports_partitioning: bool = False

    #: the domain of the generator.
    domain: Domain = REALS

    @abstractmethod
    def generator(self, x: np.ndarray) -> float:
        """Evaluate the convex generator ``f`` at ``x``."""

    @abstractmethod
    def gradient(self, x: np.ndarray) -> np.ndarray:
        """Evaluate ``grad f`` at ``x``."""

    def divergence(self, x: np.ndarray, y: np.ndarray) -> float:
        """Compute ``D_f(x, y) = f(x) - f(y) - <grad f(y), x - y>``."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        grad_y = self.gradient(y)
        value = self.generator(x) - self.generator(y) - float(np.dot(grad_y, x - y))
        # Guard against tiny negative values from floating-point cancellation.
        return value if value > 0.0 else 0.0

    def batch_divergence(self, points: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Compute ``D_f(x, y)`` for every row ``x`` of ``points``.

        The default implementation loops; decomposable subclasses provide
        a fully vectorised override.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        return np.array([self.divergence(row, y) for row in points])

    def cross_divergence(self, points: np.ndarray, queries: np.ndarray) -> np.ndarray:
        """Compute ``D_f(x_i, q_b)`` for every (point, query) pair.

        Returns an ``(n, B)`` matrix.  Contract: each column must be
        bitwise independent of which other queries are in the batch
        (``cross(points, queries)[:, b] == cross(points,
        queries[b:b+1])[:, 0]``).  The default implementation stacks
        ``batch_divergence`` columns; decomposable subclasses provide a
        matrixised expansion kernel.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        if queries.shape[0] == 0:
            return np.empty((points.shape[0], 0), dtype=float)
        return np.stack(
            [self.batch_divergence(points, query) for query in queries], axis=1
        )

    def cross_divergence_grouped(
        self,
        points: np.ndarray,
        queries: np.ndarray,
        point_index: np.ndarray,
        query_index: np.ndarray,
        pair_block: int | None = None,
    ) -> np.ndarray:
        """Score only the listed (point, query) pairs.

        Returns a ``(P,)`` vector with ``out[p] ==
        cross_divergence(points, queries)[point_index[p], query_index[p]]``
        *bitwise* -- the sparse counterpart of the dense kernel, used by
        the index's masked/grouped refinement when per-query candidate
        sets are small relative to the union.  The default falls back to
        the dense matrix and gathers; decomposable subclasses compute
        per-point/per-query terms once and contract only real pairs.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        point_index = np.asarray(point_index, dtype=int)
        query_index = np.asarray(query_index, dtype=int)
        if point_index.size == 0:
            return np.empty(0, dtype=float)
        return self.cross_divergence(points, queries)[point_index, query_index]

    def validate_domain(self, x: np.ndarray, what: str = "vector") -> None:
        """Raise :class:`DomainError` when ``x`` violates the domain."""
        self.domain.validate(x, what)

    def refinement_conditioner(
        self, points: np.ndarray
    ) -> "RefinementConditioner | None":
        """Conditioner for :meth:`cross_divergence` on this dataset.

        Divergences with an exact invariance override this to map the
        dataset's scale into the expansion kernels' well-conditioned
        regime (see :class:`RefinementConditioner`); the default --
        no known invariance -- returns ``None``, leaving inputs raw.
        """
        return None

    def restrict(self, dims: Sequence[int]) -> "BregmanDivergence":
        """Return the divergence restricted to a dimension subset.

        Only decomposable divergences can be restricted; the restriction
        of a separable generator is the same generator over fewer
        coordinates.
        """
        raise NotDecomposableError(
            f"divergence {self.name!r} is not decomposable and cannot be "
            "restricted to a dimension subset"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class DecomposableBregmanDivergence(BregmanDivergence):
    """Separable Bregman divergence ``f(x) = sum_j phi(x_j)``.

    Subclasses implement the scalar generator ``phi`` and its derivative
    as NumPy ufunc-style methods.  ``phi_prime_inverse`` is the inverse of
    ``phi'`` -- equivalently the (coordinate-wise) gradient of the convex
    conjugate ``f*`` -- and powers the dual-space geodesic used by the
    BB-tree's node bounds (Cayton 2008).
    """

    supports_partitioning = True

    # ------------------------------------------------------------------
    # scalar maps (vectorised over arrays) -- the subclass contract
    # ------------------------------------------------------------------

    @abstractmethod
    def phi(self, t: np.ndarray) -> np.ndarray:
        """Elementwise generator ``phi``."""

    @abstractmethod
    def phi_prime(self, t: np.ndarray) -> np.ndarray:
        """Elementwise derivative ``phi'``."""

    @abstractmethod
    def phi_prime_inverse(self, s: np.ndarray) -> np.ndarray:
        """Elementwise inverse of ``phi'`` (gradient of the conjugate)."""

    # ------------------------------------------------------------------
    # derived vector-level API
    # ------------------------------------------------------------------

    def generator(self, x: np.ndarray) -> float:
        return float(np.sum(self.phi(np.asarray(x, dtype=float))))

    def gradient(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(self.phi_prime(np.asarray(x, dtype=float)), dtype=float)

    def gradient_inverse(self, s: np.ndarray) -> np.ndarray:
        """Map a dual vector back to the primal space (``(grad f)^-1``)."""
        return np.asarray(self.phi_prime_inverse(np.asarray(s, dtype=float)), dtype=float)

    def divergence(self, x: np.ndarray, y: np.ndarray) -> float:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        grad_y = self.phi_prime(y)
        value = float(
            np.sum(self.phi(x)) - np.sum(self.phi(y)) - np.dot(grad_y, x - y)
        )
        return value if value > 0.0 else 0.0

    def batch_divergence(self, points: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorised ``D_f(x_i, y)`` over the rows of ``points``.

        Kept in the well-conditioned direct form (differences before
        reductions): this is the reference kernel for oracles, baselines
        and geometry.  The refinement hot path uses the faster
        expansion-form :meth:`cross_divergence` instead.  The cross-term
        reduction uses einsum's fixed summation order so each row's
        value is bitwise independent of how many rows are scored
        together (a BLAS matvec may switch accumulation patterns with
        the row count) -- rerank buffers must agree with full-scan
        oracles bit for bit.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        y = np.asarray(y, dtype=float)
        grad_y = self.phi_prime(y)
        fy = float(np.sum(self.phi(y)))
        values = (
            np.sum(self.phi(points), axis=1)
            - fy
            - np.einsum("ij,j->i", points - y, grad_y)
        )
        return np.maximum(values, 0.0)

    def cross_divergence(self, points: np.ndarray, queries: np.ndarray) -> np.ndarray:
        """All-pairs ``D_f(x_i, q_b)`` as one matrixised ``(n, B)`` kernel.

        The inner-product expansion

            D_f(x, q) = f(x) - f(q) - <x, grad f(q)> + <grad f(q), q>

        moves all transcendental work (``phi``/``phi'``) to per-point
        and per-query vectors -- ``O((n + B) d)`` -- leaving a single
        ``O(n B d)`` sum-of-products contraction per pair.

        Contract: column ``b`` is *bitwise* identical for any query
        subset -- ``cross_divergence(points, queries)[:, b] ==
        cross_divergence(points, queries[b:b+1])[:, 0]`` -- which is
        what lets the index score single queries and blocked batches
        through one kernel with bit-for-bit agreement.  Values agree
        with :meth:`batch_divergence` to rounding (not bitwise): the
        expansion trades a little conditioning for speed, so tiny
        divergences between large-magnitude near-duplicates can cancel.
        For translation-invariant divergences callers should centre
        ``points``/``queries`` on a common shift first (the index's
        refinement paths do).
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        grad_q = self.phi_prime(queries)
        values = (
            np.sum(self.phi(points), axis=1)[:, None]
            - np.sum(self.phi(queries), axis=1)[None, :]
            - np.einsum("nj,bj->nb", points, grad_q)
            + np.einsum("bj,bj->b", grad_q, queries)[None, :]
        )
        return np.maximum(values, 0.0)

    # ------------------------------------------------------------------
    # grouped (sparse) kernel
    # ------------------------------------------------------------------
    #
    # Bitwise contract with the dense kernel: for every pair,
    # cross_divergence_grouped(...)[p] equals
    # cross_divergence(points, queries)[point_index[p], query_index[p]]
    # bit-for-bit.  This holds because (a) per-point and per-query terms
    # are row-reductions, identical whether computed on the full arrays
    # or gathered rows, (b) the bucketed pair_contract reduces the same
    # contiguous axis with the same accumulation order as the dense
    # "nj,bj->nb" entry, and (c) the combining expression applies the
    # same operations in the same order.  Divergences that override
    # cross_divergence with a custom expansion MUST override
    # _grouped_terms/_grouped_pairs to mirror it exactly.

    def _grouped_terms(self, points: np.ndarray, queries: np.ndarray) -> tuple:
        """Per-point / per-query precomputation for the grouped kernel."""
        grad_q = self.phi_prime(queries)
        return (
            np.sum(self.phi(points), axis=1),
            np.sum(self.phi(queries), axis=1),
            grad_q,
            np.einsum("bj,bj->b", grad_q, queries),
        )

    def _grouped_pairs(
        self,
        terms: tuple,
        points: np.ndarray,
        queries: np.ndarray,
        point_index: np.ndarray,
        query_index: np.ndarray,
    ) -> np.ndarray:
        """Raw (unclamped) pair values, mirroring the dense expression."""
        point_term, query_term, grad_q, qdot = terms
        return (
            point_term[point_index]
            - query_term[query_index]
            - pair_contract(points, grad_q, point_index, query_index)
            + qdot[query_index]
        )

    def cross_divergence_grouped(
        self,
        points: np.ndarray,
        queries: np.ndarray,
        point_index: np.ndarray,
        query_index: np.ndarray,
        pair_block: int | None = None,
    ) -> np.ndarray:
        """Sparse expansion kernel: score only the listed pairs.

        Transcendental work stays ``O((n + B) d)`` exactly as in the
        dense kernel (per-point and per-query terms are computed once);
        the per-pair cost is one gathered sum-of-products contraction,
        so total work is ``O(P d)`` for ``P`` pairs instead of the dense
        ``O(n B d)``.  ``pair_block`` bounds the ``(block, d)`` gather
        slabs (default ~2^20 float64 elements); blocking is an output
        partition and cannot change any value.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        point_index = np.asarray(point_index, dtype=int)
        query_index = np.asarray(query_index, dtype=int)
        if point_index.shape != query_index.shape or point_index.ndim != 1:
            raise ValueError(
                "point_index and query_index must be 1-D arrays of equal length"
            )
        n_pairs = point_index.size
        if n_pairs == 0:
            return np.empty(0, dtype=float)
        if pair_block is None:
            pair_block = max(1, (1 << 20) // max(1, points.shape[1]))
        terms = self._grouped_terms(points, queries)
        out = np.empty(n_pairs, dtype=float)
        for lo in range(0, n_pairs, pair_block):
            hi = min(lo + pair_block, n_pairs)
            out[lo:hi] = self._grouped_pairs(
                terms, points, queries, point_index[lo:hi], query_index[lo:hi]
            )
        return np.maximum(out, 0.0)

    def elementwise_divergence(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-coordinate divergence contributions (sums to the total)."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        contrib = self.phi(x) - self.phi(y) - self.phi_prime(y) * (x - y)
        return np.maximum(contrib, 0.0)

    def dual_interpolate(self, a: np.ndarray, b: np.ndarray, theta: float) -> np.ndarray:
        """Point on the dual geodesic between ``a`` (theta=1) and ``b``.

        Returns ``(grad f)^-1( theta * grad f(a) + (1 - theta) * grad f(b) )``,
        the curve along which the minimiser of ``D_f(., q)`` over a Bregman
        ball lies (Cayton 2008, Theorem 2).
        """
        ga = self.phi_prime(np.asarray(a, dtype=float))
        gb = self.phi_prime(np.asarray(b, dtype=float))
        return self.gradient_inverse(theta * ga + (1.0 - theta) * gb)

    def restrict(self, dims: Sequence[int]) -> "DecomposableBregmanDivergence":
        """Separable generators restrict to any dimension subset unchanged."""
        return self

    def centroid(self, points: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
        """Bregman centroid of ``points`` (the arithmetic mean).

        Banerjee et al. (2005): the minimiser of ``sum_i w_i D_f(x_i, c)``
        over ``c`` is the weighted arithmetic mean for *every* Bregman
        divergence, which is what makes Bregman k-means well defined.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        return np.asarray(np.average(points, axis=0, weights=weights), dtype=float)
