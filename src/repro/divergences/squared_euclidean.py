"""Squared Euclidean distance as a Bregman divergence (``phi(t) = t^2``).

With generator ``f(x) = sum_j x_j^2`` the Bregman divergence is

    D_f(x, y) = sum_j (x_j - y_j)^2 = ||x - y||^2

the squared Euclidean distance, i.e. the diagonal-identity special case of
the squared Mahalanobis distance from Section 3.1 of the paper.
"""

from __future__ import annotations

import numpy as np

from .base import (
    REALS,
    DecomposableBregmanDivergence,
    RefinementConditioner,
    pair_contract,
)

__all__ = ["SquaredEuclidean"]


class SquaredEuclidean(DecomposableBregmanDivergence):
    """``D_f(x, y) = ||x - y||^2`` -- the metric sanity-check divergence."""

    name = "squared_euclidean"
    domain = REALS

    def refinement_conditioner(self, points: np.ndarray) -> RefinementConditioner:
        # Translation invariance: centring on the dataset mean removes
        # the expansion kernel's large-magnitude cancellation exactly.
        points = np.atleast_2d(np.asarray(points, dtype=float))
        return RefinementConditioner(shift=points.mean(axis=0))

    def phi(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        return t * t

    def phi_prime(self, t: np.ndarray) -> np.ndarray:
        return 2.0 * np.asarray(t, dtype=float)

    def phi_prime_inverse(self, s: np.ndarray) -> np.ndarray:
        return np.asarray(s, dtype=float) / 2.0

    def divergence(self, x: np.ndarray, y: np.ndarray) -> float:
        # Direct formula: cheaper and exactly non-negative.
        diff = np.asarray(x, dtype=float) - np.asarray(y, dtype=float)
        return float(np.dot(diff, diff))

    def batch_divergence(self, points: np.ndarray, y: np.ndarray) -> np.ndarray:
        # Direct diff form: well-conditioned at any magnitude (the
        # reference kernel; cross_divergence is the fast expansion).
        points = np.atleast_2d(np.asarray(points, dtype=float))
        diff = points - np.asarray(y, dtype=float)
        return np.einsum("ij,ij->i", diff, diff)

    def cross_divergence(self, points: np.ndarray, queries: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        values = (
            np.einsum("nj,nj->n", points, points)[:, None]
            - 2.0 * np.einsum("nj,bj->nb", points, queries)
            + np.einsum("bj,bj->b", queries, queries)[None, :]
        )
        return np.maximum(values, 0.0)

    # grouped kernel: mirrors the ||x||^2 - 2<x,q> + ||q||^2 expansion
    # above term-for-term so pair values match the dense matrix bitwise.
    def _grouped_terms(self, points: np.ndarray, queries: np.ndarray) -> tuple:
        return (
            np.einsum("nj,nj->n", points, points),
            np.einsum("bj,bj->b", queries, queries),
        )

    def _grouped_pairs(
        self,
        terms: tuple,
        points: np.ndarray,
        queries: np.ndarray,
        point_index: np.ndarray,
        query_index: np.ndarray,
    ) -> np.ndarray:
        xx, qq = terms
        return (
            xx[point_index]
            - 2.0 * pair_contract(points, queries, point_index, query_index)
            + qq[query_index]
        )
