"""Squared Mahalanobis distance as a Bregman divergence.

The paper's first example (Section 3.1): with ``f(x) = 1/2 x^T Q x`` for a
symmetric positive-definite ``Q``,

    D_f(x, y) = 1/2 (x - y)^T Q (x - y).

Two flavours are provided:

* :class:`DiagonalMahalanobis` -- ``Q`` diagonal.  The generator is
  separable, so the divergence is decomposable and works with
  BrePartition's dimensionality partitioning (weights are sliced along
  with the dimensions).
* :class:`MahalanobisDivergence` -- full-matrix ``Q``.  Cross-dimension
  terms make the generator non-separable, so this divergence refuses
  partitioning (``restrict`` raises :class:`NotDecomposableError`) but is
  usable with the linear-scan and BB-tree baselines.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import InvalidParameterError
from .base import (
    REALS,
    BregmanDivergence,
    DecomposableBregmanDivergence,
    RefinementConditioner,
    pair_contract,
)

__all__ = ["DiagonalMahalanobis", "MahalanobisDivergence"]


class DiagonalMahalanobis(DecomposableBregmanDivergence):
    """Separable Mahalanobis: ``D(x, y) = 1/2 sum_j w_j (x_j - y_j)^2``.

    Parameters
    ----------
    weights:
        Strictly positive per-dimension weights (the diagonal of ``Q``).
    """

    name = "diagonal_mahalanobis"
    domain = REALS

    def refinement_conditioner(self, points: np.ndarray) -> RefinementConditioner:
        # Translation invariance: centring on the dataset mean removes
        # the expansion kernel's large-magnitude cancellation exactly.
        points = np.atleast_2d(np.asarray(points, dtype=float))
        return RefinementConditioner(shift=points.mean(axis=0))

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 1 or weights.size == 0:
            raise InvalidParameterError("weights must be a non-empty 1-D array")
        if np.any(weights <= 0.0) or not np.all(np.isfinite(weights)):
            raise InvalidParameterError("weights must be strictly positive and finite")
        self.weights = weights

    def phi(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        return 0.5 * self.weights * t * t

    def phi_prime(self, t: np.ndarray) -> np.ndarray:
        return self.weights * np.asarray(t, dtype=float)

    def phi_prime_inverse(self, s: np.ndarray) -> np.ndarray:
        return np.asarray(s, dtype=float) / self.weights

    def restrict(self, dims: Sequence[int]) -> "DiagonalMahalanobis":
        """Slice the weight vector along with the dimension subset."""
        return DiagonalMahalanobis(self.weights[np.asarray(dims, dtype=int)])

    def divergence(self, x: np.ndarray, y: np.ndarray) -> float:
        diff = np.asarray(x, dtype=float) - np.asarray(y, dtype=float)
        return float(0.5 * np.dot(self.weights, diff * diff))

    def batch_divergence(self, points: np.ndarray, y: np.ndarray) -> np.ndarray:
        # Direct diff form: well-conditioned at any magnitude (the
        # reference kernel; cross_divergence is the fast expansion).
        # einsum's fixed summation order keeps each row's value bitwise
        # independent of how many rows are scored together (a BLAS
        # matvec may switch accumulation patterns with the row count),
        # so rerank buffers agree with full-scan oracles bit for bit.
        points = np.atleast_2d(np.asarray(points, dtype=float))
        diff = points - np.asarray(y, dtype=float)
        return 0.5 * np.einsum("ij,ij,j->i", diff, diff, self.weights)

    def cross_divergence(self, points: np.ndarray, queries: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        values = (
            np.einsum("nj,nj,j->n", points, points, self.weights)[:, None]
            - 2.0 * np.einsum("nj,bj->nb", points, self.weights * queries)
            + np.einsum("bj,bj,j->b", queries, queries, self.weights)[None, :]
        )
        return np.maximum(0.5 * values, 0.0)

    # grouped kernel: mirrors the weighted expansion above term-for-term
    # (including the trailing 0.5 scale) for bitwise pair parity.
    def _grouped_terms(self, points: np.ndarray, queries: np.ndarray) -> tuple:
        return (
            np.einsum("nj,nj,j->n", points, points, self.weights),
            self.weights * queries,
            np.einsum("bj,bj,j->b", queries, queries, self.weights),
        )

    def _grouped_pairs(
        self,
        terms: tuple,
        points: np.ndarray,
        queries: np.ndarray,
        point_index: np.ndarray,
        query_index: np.ndarray,
    ) -> np.ndarray:
        xx, weighted_q, qq = terms
        values = (
            xx[point_index]
            - 2.0 * pair_contract(points, weighted_q, point_index, query_index)
            + qq[query_index]
        )
        return 0.5 * values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiagonalMahalanobis(d={self.weights.size})"


class MahalanobisDivergence(BregmanDivergence):
    """Full-matrix Mahalanobis: ``D(x, y) = 1/2 (x - y)^T Q (x - y)``.

    Not decomposable; included for baseline completeness and to exercise
    the library's rejection path for non-separable generators.
    """

    name = "mahalanobis"
    domain = REALS
    supports_partitioning = False

    def refinement_conditioner(self, points: np.ndarray) -> RefinementConditioner:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        return RefinementConditioner(shift=points.mean(axis=0))

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise InvalidParameterError("matrix must be square")
        if not np.allclose(matrix, matrix.T, atol=1e-10):
            raise InvalidParameterError("matrix must be symmetric")
        eigvals = np.linalg.eigvalsh(matrix)
        if np.any(eigvals <= 0.0):
            raise InvalidParameterError("matrix must be positive definite")
        self.matrix = matrix

    def generator(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=float)
        return float(0.5 * x @ self.matrix @ x)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        # single-point d x d matvec: operand shapes are fixed by the
        # divergence's dimension, never by batch composition
        return self.matrix @ np.asarray(x, dtype=float)  # repro: noqa[fixed-order-reduction]

    def divergence(self, x: np.ndarray, y: np.ndarray) -> float:
        diff = np.asarray(x, dtype=float) - np.asarray(y, dtype=float)
        return float(0.5 * diff @ self.matrix @ diff)

    def batch_divergence(self, points: np.ndarray, y: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        diff = points - np.asarray(y, dtype=float)
        return 0.5 * np.einsum("ij,jk,ik->i", diff, self.matrix, diff)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MahalanobisDivergence(d={self.matrix.shape[0]})"
