"""Kullback-Leibler style divergences (negative-Shannon-entropy generator).

Two variants:

* :class:`GeneralizedKL` -- generator ``phi(t) = t log t - t`` on the
  positive orthant, giving

      D(x, y) = sum_j ( x_j log(x_j / y_j) - x_j + y_j ).

  This unnormalised (a.k.a. generalized / I-divergence) form is separable
  and therefore decomposable: it works with BrePartition.

* :class:`SimplexKL` -- the classic KL divergence restricted to the
  probability simplex.  Subvectors of simplex-normalised data are not
  themselves simplex-distributed, so the divergence is *not* cumulative
  under dimensionality partitioning; the paper (Section 3.1) explicitly
  excludes it.  ``supports_partitioning`` is ``False`` and ``restrict``
  raises, which the core index uses to reject it early.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import DomainError, NotDecomposableError
from .base import (
    POSITIVE_REALS,
    DecomposableBregmanDivergence,
    RefinementConditioner,
    pair_contract,
)

__all__ = ["GeneralizedKL", "SimplexKL"]


class GeneralizedKL(DecomposableBregmanDivergence):
    """Unnormalised KL: ``D(x, y) = sum(x log(x/y) - x + y)``, x, y > 0."""

    name = "generalized_kl"
    domain = POSITIVE_REALS

    def refinement_conditioner(self, points: np.ndarray) -> RefinementConditioner:
        # D is 1-homogeneous (D(x/c, y/c) = D(x, y) / c): evaluating the
        # expansion kernel near unit scale and multiplying back by c
        # keeps its x*log(x) sums small on large-magnitude data.
        points = np.atleast_2d(np.asarray(points, dtype=float))
        c = float(points.mean())
        return RefinementConditioner(scale=c, factor=c)

    def phi(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        return t * np.log(t) - t

    def phi_prime(self, t: np.ndarray) -> np.ndarray:
        return np.log(np.asarray(t, dtype=float))

    def phi_prime_inverse(self, s: np.ndarray) -> np.ndarray:
        return np.exp(np.asarray(s, dtype=float))

    def divergence(self, x: np.ndarray, y: np.ndarray) -> float:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        value = float(np.sum(x * np.log(x / y) - x + y))
        return value if value > 0.0 else 0.0

    def batch_divergence(self, points: np.ndarray, y: np.ndarray) -> np.ndarray:
        # Direct ratio form: well-conditioned (the reference kernel;
        # cross_divergence is the fast expansion).
        points = np.atleast_2d(np.asarray(points, dtype=float))
        y = np.asarray(y, dtype=float)
        values = np.sum(points * np.log(points / y) - points + y, axis=1)
        return np.maximum(values, 0.0)

    def cross_divergence(self, points: np.ndarray, queries: np.ndarray) -> np.ndarray:
        # Expansion sum(x log x - x log q - x + q): the logs move to
        # per-point / per-query vectors; the only per-pair work is the
        # <x, log q> contraction.
        points = np.atleast_2d(np.asarray(points, dtype=float))
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        values = (
            np.sum(points * np.log(points), axis=1)[:, None]
            - np.einsum("nj,bj->nb", points, np.log(queries))
            - np.sum(points, axis=1)[:, None]
            + np.sum(queries, axis=1)[None, :]
        )
        return np.maximum(values, 0.0)

    # grouped kernel: mirrors the x log x - <x, log q> - x + q expansion
    # above term-for-term so pair values match the dense matrix bitwise.
    def _grouped_terms(self, points: np.ndarray, queries: np.ndarray) -> tuple:
        return (
            np.sum(points * np.log(points), axis=1),
            np.log(queries),
            np.sum(points, axis=1),
            np.sum(queries, axis=1),
        )

    def _grouped_pairs(
        self,
        terms: tuple,
        points: np.ndarray,
        queries: np.ndarray,
        point_index: np.ndarray,
        query_index: np.ndarray,
    ) -> np.ndarray:
        xlogx, log_q, sum_x, sum_q = terms
        return (
            xlogx[point_index]
            - pair_contract(points, log_q, point_index, query_index)
            - sum_x[point_index]
            + sum_q[query_index]
        )


class SimplexKL(GeneralizedKL):
    """KL divergence on the probability simplex (not partitionable).

    On the simplex the ``- x + y`` terms cancel, recovering the familiar
    ``sum x log(x/y)``.  Partitioning is rejected per paper Section 3.1.
    """

    name = "simplex_kl"
    supports_partitioning = False

    def validate_domain(self, x: np.ndarray, what: str = "vector") -> None:
        super().validate_domain(x, what)
        total = float(np.sum(np.asarray(x, dtype=float)))
        if abs(total - 1.0) > 1e-6:
            raise DomainError(f"{what} must lie on the probability simplex (sum={total:.6f})")

    def restrict(self, dims: Sequence[int]) -> "GeneralizedKL":
        raise NotDecomposableError(
            "simplex-constrained KL divergence is not cumulative under "
            "dimensionality partitioning (paper Section 3.1)"
        )
