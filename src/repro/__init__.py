"""repro: a full reproduction of *BrePartition: Optimized High-Dimensional
kNN Search with Bregman Distances* (Song, Gu, Zhang, Yu; ICDE 2023 /
arXiv:2006.00227).

Quickstart::

    import numpy as np
    from repro import BrePartitionIndex, ItakuraSaito

    points = np.abs(np.random.default_rng(0).normal(1.0, 0.2, (2000, 64)))
    index = BrePartitionIndex(ItakuraSaito()).build(points)
    result = index.search(points[0], k=10)
    print(result.ids, result.divergences, result.stats.pages_read)

Subpackages
-----------
``divergences``  Bregman divergence family (SED, ISD, ED, KL, ...).
``geometry``     Cauchy bounds, Bregman balls, dual projections.
``partitioning`` Contiguous & PCCP strategies, Theorem-4 optimiser.
``clustering``   Bregman k-means.
``storage``      Simulated disk, I/O accounting, buffer pool.
``bbtree``       BB-trees and the BB-forest.
``core``         The BrePartition index and its approximate extension.
``pipeline``     The staged Plan/Fetch/Refine/Rerank search engine.
``exec``         Thread-pool shard fan-out with modeled I/O latency.
``serve``        Asyncio micro-batching serving layer.
``vafile``       The "VAF" baseline.
``baselines``    Linear scan, disk BBT, and "Var".
``datasets``     Paper synthetics and laptop-scale proxies.
``eval``         Metrics and the experiment harness.
"""

from .baselines import BBTreeIndex, LinearScanIndex, VarBBTreeIndex, brute_force_knn
from .core import (
    ApproximateBrePartitionIndex,
    BatchSearchResult,
    BrePartitionConfig,
    BrePartitionIndex,
    SearchResult,
)
from .divergences import (
    BregmanDivergence,
    DecomposableBregmanDivergence,
    DiagonalMahalanobis,
    ExponentialDistance,
    GeneralizedKL,
    ItakuraSaito,
    MahalanobisDivergence,
    PNormDivergence,
    ShannonEntropy,
    SimplexKL,
    SquaredEuclidean,
    get_divergence,
)
from .exceptions import (
    DomainError,
    InvalidParameterError,
    NotDecomposableError,
    NotFittedError,
    ReproError,
    ServerOverloadedError,
    StorageError,
)
from .vafile import VAFileIndex

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "BrePartitionIndex",
    "ApproximateBrePartitionIndex",
    "BrePartitionConfig",
    "SearchResult",
    "BatchSearchResult",
    # divergences
    "BregmanDivergence",
    "DecomposableBregmanDivergence",
    "SquaredEuclidean",
    "DiagonalMahalanobis",
    "MahalanobisDivergence",
    "ItakuraSaito",
    "ExponentialDistance",
    "GeneralizedKL",
    "SimplexKL",
    "ShannonEntropy",
    "PNormDivergence",
    "get_divergence",
    # baselines
    "VAFileIndex",
    "BBTreeIndex",
    "LinearScanIndex",
    "VarBBTreeIndex",
    "brute_force_knn",
    # errors
    "ReproError",
    "DomainError",
    "NotDecomposableError",
    "NotFittedError",
    "InvalidParameterError",
    "StorageError",
    "ServerOverloadedError",
]
