"""Synthetic dataset generators.

``normal`` and ``uniform`` reproduce the paper's two synthetic datasets
(Section 9.1.2); the clustered and correlated generators are building
blocks for the real-dataset proxies and for exercising PCCP (which only
pays off when dimensions are correlated).

All generators return plain ``(n, d)`` float64 matrices; domain
constraints (positive support for Itakura-Saito, bounded coordinates for
the exponential distance) are the *generator's* responsibility, so every
matrix is valid for its intended divergence out of the box.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = [
    "normal_matrix",
    "uniform_matrix",
    "clustered_matrix",
    "correlated_matrix",
]


def _rng(seed_or_rng) -> np.random.Generator:
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def normal_matrix(
    n: int, d: int, seed=0, loc: float = 0.0, scale: float = 1.0
) -> np.ndarray:
    """The paper's "Normal" data: i.i.d. standard normal coordinates."""
    if n < 1 or d < 1:
        raise InvalidParameterError("n and d must be positive")
    return _rng(seed).normal(loc, scale, size=(n, d))


def uniform_matrix(
    n: int, d: int, seed=0, low: float = 0.5, high: float = 100.0
) -> np.ndarray:
    """The paper's "Uniform" data: i.i.d. uniform positive coordinates.

    The paper draws from [0, 100]; we keep the low end strictly positive
    so the matrix is valid for Itakura-Saito (the divergence the paper
    pairs with this dataset).
    """
    if low <= 0.0 or high <= low:
        raise InvalidParameterError("need 0 < low < high")
    return _rng(seed).uniform(low, high, size=(n, d))


def clustered_matrix(
    n: int,
    d: int,
    n_clusters: int = 10,
    seed=0,
    center_scale: float = 1.0,
    spread: float = 0.25,
    positive: bool = False,
) -> np.ndarray:
    """Mixture-of-Gaussians data with optional positive support.

    Cluster structure is what BB-trees exploit; real multimedia features
    (audio spectra, CNN embeddings) are strongly clustered, so the
    proxies are built on this generator.  With ``positive=True`` the
    mixture is pushed through ``exp`` (log-normal clusters), giving
    strictly positive data for Itakura-Saito / generalized KL.
    """
    rng = _rng(seed)
    if n_clusters < 1:
        raise InvalidParameterError("n_clusters must be >= 1")
    centers = rng.normal(0.0, center_scale, size=(n_clusters, d))
    labels = rng.integers(n_clusters, size=n)
    points = centers[labels] + rng.normal(0.0, spread, size=(n, d))
    if positive:
        points = np.exp(points * 0.5)  # log-normal, moderate dynamic range
    return points


def correlated_matrix(
    n: int,
    d: int,
    group_size: int = 8,
    seed=0,
    correlation: float = 0.9,
    positive: bool = False,
    n_clusters: int = 0,
) -> np.ndarray:
    """Data whose dimensions form strongly correlated groups.

    Dimensions are partitioned into consecutive groups of ``group_size``;
    all dimensions in a group share a latent factor with weight
    ``sqrt(correlation)`` plus independent noise -- the structure PCCP's
    assignment phase discovers.  Optionally adds mixture structure on
    the latent factors (``n_clusters > 0``) and positive support.
    """
    rng = _rng(seed)
    if not 0.0 <= correlation < 1.0:
        raise InvalidParameterError("correlation must be in [0, 1)")
    if group_size < 1:
        raise InvalidParameterError("group_size must be >= 1")
    n_groups = -(-d // group_size)
    if n_clusters > 0:
        centers = rng.normal(0.0, 1.0, size=(n_clusters, n_groups))
        factors = centers[rng.integers(n_clusters, size=n)] + rng.normal(
            0.0, 0.5, size=(n, n_groups)
        )
    else:
        factors = rng.normal(0.0, 1.0, size=(n, n_groups))
    noise = rng.normal(0.0, 1.0, size=(n, d))
    shared = np.sqrt(correlation)
    indep = np.sqrt(1.0 - correlation)
    group_of = np.minimum(np.arange(d) // group_size, n_groups - 1)
    points = shared * factors[:, group_of] + indep * noise
    if positive:
        points = np.exp(points * 0.5)
    return points
