"""Datasets: paper synthetics, real-data proxies, and generators."""

from .loader import Dataset, split_queries
from .proxies import PAPER_SCALE, available_datasets, load_dataset
from .synthetic import (
    clustered_matrix,
    correlated_matrix,
    normal_matrix,
    uniform_matrix,
)

__all__ = [
    "Dataset",
    "split_queries",
    "load_dataset",
    "available_datasets",
    "PAPER_SCALE",
    "normal_matrix",
    "uniform_matrix",
    "clustered_matrix",
    "correlated_matrix",
]
