"""Laptop-scale proxies for the paper's datasets (Table 4).

The paper evaluates on Audio (54k x 192, ED), Fonts (745k x 400, ISD),
Deep (1M x 256, ED), Sift (11.2M x 128, ED), plus synthetic Normal
(50k x 200, ED) and Uniform (50k x 200, ISD).  The real files are not
available offline, so each proxy synthesises data with the same
dimensionality character at a reduced default size:

* the same dimensionality and divergence pairing as the paper,
* mixture-of-Gaussians cluster structure (what BB-trees exploit),
* correlated dimension groups (what PCCP exploits),
* value ranges kept inside each divergence's numeric comfort zone
  (positive support for ISD; |x| small enough that ED never overflows).

DESIGN.md Section 4 documents why this substitution preserves the
relative behaviour of the compared methods.
"""

from __future__ import annotations

import numpy as np

from ..divergences.exponential import ExponentialDistance
from ..divergences.itakura_saito import ItakuraSaito
from ..exceptions import InvalidParameterError
from .loader import Dataset, split_queries
from .synthetic import correlated_matrix, normal_matrix, uniform_matrix

__all__ = ["load_dataset", "available_datasets", "PAPER_SCALE"]

#: the paper's Table 4, for reporting alongside our laptop-scale runs.
PAPER_SCALE = {
    "audio": {"n": 54_387, "d": 192, "M": 28, "page": "32KB", "measure": "ED"},
    "fonts": {"n": 745_000, "d": 400, "M": 50, "page": "128KB", "measure": "ISD"},
    "deep": {"n": 1_000_000, "d": 256, "M": 37, "page": "64KB", "measure": "ED"},
    "sift": {"n": 11_164_866, "d": 128, "M": 22, "page": "64KB", "measure": "ED"},
    "normal": {"n": 50_000, "d": 200, "M": 25, "page": "32KB", "measure": "ED"},
    "uniform": {"n": 50_000, "d": 200, "M": 21, "page": "32KB", "measure": "ISD"},
}

_DEFAULT_SIZES = {
    "audio": 4000,
    "fonts": 4000,
    "deep": 5000,
    "sift": 8000,
    "normal": 4000,
    "uniform": 4000,
}


def _multimedia_matrix(
    n: int,
    d: int,
    seed: int,
    n_clusters: int,
    group_size: int,
    energy_sigma: float,
    pattern_scale: float,
    noise: float,
    positive: bool,
) -> np.ndarray:
    """Shared builder capturing the structure of multimedia features.

    Three ingredients, each load-bearing for a different mechanism in the
    paper:

    * a heavy-tailed per-vector energy level (loudness of an audio
      frame, contrast of a SIFT patch, ink density of a glyph) -- this is
      what makes the per-point summaries ``(alpha_x, gamma_x)``
      discriminative, i.e. what gives the Cauchy filter its pruning
      power;
    * per-group latent factors with mixture (cluster) structure shared
      by ``group_size`` consecutive dimensions -- the inter-dimension
      correlation PCCP discovers and spreads, and the clusterability
      BB-trees exploit;
    * small independent per-dimension noise.
    """
    rng = np.random.default_rng(seed)
    n_groups = -(-d // group_size)
    centers = rng.normal(0.0, 1.0, size=(n_clusters, n_groups))
    labels = rng.integers(n_clusters, size=n)
    latent = centers[labels] + 0.3 * rng.normal(0.0, 1.0, size=(n, n_groups))
    energy = rng.normal(0.0, energy_sigma, size=(n, 1))
    group_of = np.minimum(np.arange(d) // group_size, n_groups - 1)
    log_points = (
        energy
        + pattern_scale * latent[:, group_of]
        + noise * rng.normal(0.0, 1.0, size=(n, d))
    )
    return np.exp(log_points) if positive else log_points


def _audio(n: int, d: int, seed: int) -> np.ndarray:
    # Spectral audio frames: loudness varies per frame (energy), bands
    # within a critical band are correlated; real-valued, safe for ED.
    return _multimedia_matrix(
        n, d, seed, n_clusters=15, group_size=12,
        energy_sigma=0.8, pattern_scale=0.5, noise=0.2, positive=False,
    )


def _fonts(n: int, d: int, seed: int) -> np.ndarray:
    # Font glyph descriptors: positive, ink density varies per glyph,
    # strokes correlate strongly (ISD).
    return _multimedia_matrix(
        n, d, seed, n_clusters=20, group_size=16,
        energy_sigma=0.9, pattern_scale=0.45, noise=0.25, positive=True,
    )


def _deep(n: int, d: int, seed: int) -> np.ndarray:
    # CNN embeddings: strong class clusters, moderate activation-energy
    # spread, milder correlation (ED).
    return _multimedia_matrix(
        n, d, seed, n_clusters=25, group_size=8,
        energy_sigma=0.7, pattern_scale=0.55, noise=0.25, positive=False,
    )


def _sift(n: int, d: int, seed: int) -> np.ndarray:
    # SIFT gradient histograms: patch contrast drives a heavy-tailed
    # magnitude, orientation bins of one spatial cell correlate; scaled
    # into ED's comfortable range (ED).
    return 0.8 * _multimedia_matrix(
        n, d, seed, n_clusters=30, group_size=8,
        energy_sigma=1.0, pattern_scale=0.4, noise=0.3, positive=False,
    )


_GENERATORS = {
    "audio": (_audio, 192, ExponentialDistance, 32 * 1024),
    "fonts": (_fonts, 400, ItakuraSaito, 128 * 1024),
    "deep": (_deep, 256, ExponentialDistance, 64 * 1024),
    "sift": (_sift, 128, ExponentialDistance, 64 * 1024),
}


def available_datasets() -> list[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(set(_GENERATORS) | {"normal", "uniform"})


def load_dataset(
    name: str,
    n: int | None = None,
    d: int | None = None,
    n_queries: int = 50,
    seed: int = 0,
) -> Dataset:
    """Build one of the paper's six datasets at laptop scale.

    Parameters
    ----------
    name:
        One of ``audio``, ``fonts``, ``deep``, ``sift`` (proxies) or
        ``normal``, ``uniform`` (the paper's synthetics).
    n:
        Total points generated (queries are held out of these); defaults
        to a laptop-scale size per dataset.
    d:
        Override the dimensionality (used by the Fig. 13 sweep).
    n_queries:
        Held-out query count (paper uses 50).
    seed:
        Reproducibility seed.
    """
    key = name.lower()
    n = n if n is not None else _DEFAULT_SIZES.get(key)
    if n is None:
        raise InvalidParameterError(f"unknown dataset {name!r}; see available_datasets()")

    if key == "normal":
        d = d if d is not None else 200
        matrix = normal_matrix(n, d, seed=seed)
        divergence, page = ExponentialDistance(), 32 * 1024
        description = "i.i.d. standard normal (paper synthetic), ED"
    elif key == "uniform":
        d = d if d is not None else 200
        matrix = uniform_matrix(n, d, seed=seed)
        divergence, page = ItakuraSaito(), 32 * 1024
        description = "i.i.d. uniform positive (paper synthetic), ISD"
    elif key in _GENERATORS:
        generator, default_d, div_cls, page = _GENERATORS[key]
        d = d if d is not None else default_d
        matrix = generator(n, d, seed)
        divergence = div_cls()
        description = f"synthetic proxy for the paper's {name} dataset"
    else:
        raise InvalidParameterError(f"unknown dataset {name!r}; see available_datasets()")

    points, queries = split_queries(matrix, n_queries=n_queries, seed=seed + 1)
    return Dataset(
        name=key,
        points=points,
        queries=queries,
        divergence=divergence,
        page_size_bytes=page,
        description=description,
        paper_scale=PAPER_SCALE.get(key, {}),
    )
