"""Dataset records and the named-dataset registry.

A :class:`Dataset` bundles everything an experiment needs: the points,
a held-out query set, the divergence the paper pairs with the data, and
the simulated page size from the paper's Table 4.  :func:`load_dataset`
builds the six datasets of the evaluation (four real-data *proxies* and
the two synthetics) at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..divergences.base import BregmanDivergence
from ..exceptions import InvalidParameterError

__all__ = ["Dataset", "split_queries"]


@dataclass
class Dataset:
    """A named dataset paired with its divergence and page geometry."""

    name: str
    points: np.ndarray
    queries: np.ndarray
    divergence: BregmanDivergence
    page_size_bytes: int
    description: str = ""
    paper_scale: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.points = np.atleast_2d(np.asarray(self.points, dtype=float))
        self.queries = np.atleast_2d(np.asarray(self.queries, dtype=float))
        if self.points.shape[1] != self.queries.shape[1]:
            raise InvalidParameterError("points and queries disagree on dimensionality")

    @property
    def n(self) -> int:
        """Number of indexable points."""
        return self.points.shape[0]

    @property
    def d(self) -> int:
        """Dimensionality."""
        return self.points.shape[1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset({self.name!r}, n={self.n}, d={self.d}, "
            f"measure={self.divergence.name})"
        )


def split_queries(
    points: np.ndarray, n_queries: int = 50, seed=0
) -> tuple[np.ndarray, np.ndarray]:
    """Hold out ``n_queries`` random rows as the query workload.

    Mirrors the paper's protocol ("50 points are randomly selected as the
    query sets").  Returns ``(remaining_points, queries)``.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n = points.shape[0]
    if n_queries >= n:
        raise InvalidParameterError("n_queries must be smaller than the dataset")
    rng = (
        seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    )
    query_ids = rng.choice(n, size=n_queries, replace=False)
    mask = np.ones(n, dtype=bool)
    mask[query_ids] = False
    return points[mask], points[query_ids]
