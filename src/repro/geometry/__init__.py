"""Geometric primitives: Cauchy bounds, Bregman balls, dual projections."""

from .ball import BregmanBall
from .bounds import (
    PointTuple,
    QueryTriple,
    QueryTripleBatch,
    batch_upper_bounds,
    compute_upper_bound,
    cross_term,
    transform_point,
    transform_points,
    transform_queries,
    transform_query,
)
from .projection import (
    BatchRangeProber,
    ball_intersects_range,
    batch_ball_intersects_range,
    min_divergence_to_ball,
    project_to_ball,
)

__all__ = [
    "BregmanBall",
    "PointTuple",
    "QueryTriple",
    "QueryTripleBatch",
    "transform_point",
    "transform_points",
    "transform_query",
    "transform_queries",
    "compute_upper_bound",
    "batch_upper_bounds",
    "cross_term",
    "min_divergence_to_ball",
    "ball_intersects_range",
    "batch_ball_intersects_range",
    "BatchRangeProber",
    "project_to_ball",
]
