"""Dual-space geodesic projection onto Bregman balls (Cayton 2008/2009).

A Bregman ball ``B(mu, R) = { x : D_f(x, mu) <= R }`` is a convex set
(sublevel set of a convex function of ``x``).  To prune a ball against a
query ``q`` we need a certified lower bound on

    min_{x in B(mu, R)} D_f(x, q).

KKT analysis of this convex program shows the minimiser lies on the
*dual geodesic*

    x_theta = (grad f)^-1( theta * grad f(mu) + (1 - theta) * grad f(q) )

with ``x_0 = q`` and ``x_1 = mu``.  Along the curve, ``D_f(x_theta, mu)``
decreases and ``D_f(x_theta, q)`` increases in ``theta`` (Cayton 2008),
so a bisection on ``D_f(x_theta, mu) = R`` locates the constrained
minimiser.  Returning ``D_f(x_lo, q)`` for the bracketing ``lo`` endpoint
(where ``D_f(x_lo, mu) >= R``, i.e. ``lo <= theta*``) yields a *certified*
lower bound even before convergence.  The paper's range queries use this
test (citing Cayton's secant method; we use the equally exact but more
robust bisection).
"""

from __future__ import annotations

import numpy as np

from ..divergences.base import DecomposableBregmanDivergence

__all__ = ["min_divergence_to_ball", "ball_intersects_range", "project_to_ball"]


def min_divergence_to_ball(
    divergence: DecomposableBregmanDivergence,
    center: np.ndarray,
    radius: float,
    query: np.ndarray,
    tol: float = 1e-9,
    max_iter: int = 64,
) -> float:
    """Certified lower bound on ``min_{x: D(x, center) <= radius} D(x, query)``.

    Returns 0.0 when the query itself lies inside the ball.  The bound
    converges to the exact minimum as ``max_iter`` grows; any returned
    value is guaranteed to be a valid lower bound.
    """
    center = np.asarray(center, dtype=float)
    query = np.asarray(query, dtype=float)
    if radius < 0.0:
        radius = 0.0
    if divergence.divergence(query, center) <= radius:
        return 0.0

    grad_center = divergence.phi_prime(center)
    grad_query = divergence.phi_prime(query)

    lo, hi = 0.0, 1.0  # invariant: D(x_lo, center) >= radius >= D(x_hi, center)
    x_lo = query
    for _ in range(max_iter):
        theta = 0.5 * (lo + hi)
        x_theta = divergence.gradient_inverse(
            theta * grad_center + (1.0 - theta) * grad_query
        )
        d_center = divergence.divergence(x_theta, center)
        if d_center >= radius:
            lo, x_lo = theta, x_theta
        else:
            hi = theta
        if hi - lo <= tol:
            break
    # lo <= theta*, and D(x_theta, query) is non-decreasing in theta,
    # hence D(x_lo, query) <= D(x_theta*, query) = the true minimum.
    return divergence.divergence(x_lo, query)


def ball_intersects_range(
    divergence: DecomposableBregmanDivergence,
    center: np.ndarray,
    ball_radius: float,
    query: np.ndarray,
    range_radius: float,
    max_iter: int = 48,
) -> bool:
    """Decide whether ``B(center, ball_radius)`` can intersect the query
    range ``{ x : D(x, query) <= range_radius }`` -- with early exit.

    This is the secant/bisection intersection test of Cayton (2009) that
    the paper's range queries use.  Unlike computing the full minimum,
    the decision usually resolves in a handful of iterations:

    * any dual-geodesic point that is simultaneously inside the ball and
      inside the range proves intersection (certain YES);
    * any certified lower bound above ``range_radius`` proves disjoint
      (certain NO).

    Conservative on iteration exhaustion (returns ``True``), so range
    queries stay sound.
    """
    center = np.asarray(center, dtype=float)
    query = np.asarray(query, dtype=float)
    if range_radius < 0.0:
        return False
    ball_radius = max(ball_radius, 0.0)
    if divergence.divergence(query, center) <= ball_radius:
        return True  # query itself is in the ball
    if divergence.divergence(center, query) <= range_radius:
        return True  # ball center is in the range

    grad_center = divergence.phi_prime(center)
    grad_query = divergence.phi_prime(query)
    lo, hi = 0.0, 1.0  # D(x_lo, center) >= R >= D(x_hi, center)
    for _ in range(max_iter):
        theta = 0.5 * (lo + hi)
        x_theta = divergence.gradient_inverse(
            theta * grad_center + (1.0 - theta) * grad_query
        )
        inside_ball = divergence.divergence(x_theta, center) <= ball_radius
        d_query = divergence.divergence(x_theta, query)
        if inside_ball:
            if d_query <= range_radius:
                return True  # witness point in both sets
            hi = theta
        else:
            if d_query > range_radius:
                return False  # certified lower bound beats the range
            lo = theta
        if hi - lo <= 1e-12:
            break
    return True  # undecided within budget: keep the node (sound)


def project_to_ball(
    divergence: DecomposableBregmanDivergence,
    center: np.ndarray,
    radius: float,
    query: np.ndarray,
    tol: float = 1e-9,
    max_iter: int = 64,
) -> np.ndarray:
    """Approximate Bregman projection of ``query`` onto ``B(center, radius)``.

    Returns the dual-geodesic point with ``D(x, center)`` closest to the
    radius -- the constrained minimiser of ``D(., query)``.  If the query
    is already inside the ball it is returned unchanged.
    """
    center = np.asarray(center, dtype=float)
    query = np.asarray(query, dtype=float)
    if divergence.divergence(query, center) <= radius:
        return query

    grad_center = divergence.phi_prime(center)
    grad_query = divergence.phi_prime(query)
    lo, hi = 0.0, 1.0
    x_best = center
    for _ in range(max_iter):
        theta = 0.5 * (lo + hi)
        x_theta = divergence.gradient_inverse(
            theta * grad_center + (1.0 - theta) * grad_query
        )
        if divergence.divergence(x_theta, center) >= radius:
            lo = theta
            x_best = x_theta
        else:
            hi = theta
            x_best = x_theta
        if hi - lo <= tol:
            break
    return x_best
