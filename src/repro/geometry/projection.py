"""Dual-space geodesic projection onto Bregman balls (Cayton 2008/2009).

A Bregman ball ``B(mu, R) = { x : D_f(x, mu) <= R }`` is a convex set
(sublevel set of a convex function of ``x``).  To prune a ball against a
query ``q`` we need a certified lower bound on

    min_{x in B(mu, R)} D_f(x, q).

KKT analysis of this convex program shows the minimiser lies on the
*dual geodesic*

    x_theta = (grad f)^-1( theta * grad f(mu) + (1 - theta) * grad f(q) )

with ``x_0 = q`` and ``x_1 = mu``.  Along the curve, ``D_f(x_theta, mu)``
decreases and ``D_f(x_theta, q)`` increases in ``theta`` (Cayton 2008),
so a bisection on ``D_f(x_theta, mu) = R`` locates the constrained
minimiser.  Returning ``D_f(x_lo, q)`` for the bracketing ``lo`` endpoint
(where ``D_f(x_lo, mu) >= R``, i.e. ``lo <= theta*``) yields a *certified*
lower bound even before convergence.  The paper's range queries use this
test (citing Cayton's secant method; we use the equally exact but more
robust bisection).
"""

from __future__ import annotations

import numpy as np

from ..divergences.base import DecomposableBregmanDivergence

__all__ = [
    "min_divergence_to_ball",
    "ball_intersects_range",
    "batch_ball_intersects_range",
    "BatchRangeProber",
    "project_to_ball",
]


def min_divergence_to_ball(
    divergence: DecomposableBregmanDivergence,
    center: np.ndarray,
    radius: float,
    query: np.ndarray,
    tol: float = 1e-9,
    max_iter: int = 64,
) -> float:
    """Certified lower bound on ``min_{x: D(x, center) <= radius} D(x, query)``.

    Returns 0.0 when the query itself lies inside the ball.  The bound
    converges to the exact minimum as ``max_iter`` grows; any returned
    value is guaranteed to be a valid lower bound.
    """
    center = np.asarray(center, dtype=float)
    query = np.asarray(query, dtype=float)
    if radius < 0.0:
        radius = 0.0
    if divergence.divergence(query, center) <= radius:
        return 0.0

    grad_center = divergence.phi_prime(center)
    grad_query = divergence.phi_prime(query)

    lo, hi = 0.0, 1.0  # invariant: D(x_lo, center) >= radius >= D(x_hi, center)
    x_lo = query
    for _ in range(max_iter):
        theta = 0.5 * (lo + hi)
        x_theta = divergence.gradient_inverse(
            theta * grad_center + (1.0 - theta) * grad_query
        )
        d_center = divergence.divergence(x_theta, center)
        if d_center >= radius:
            lo, x_lo = theta, x_theta
        else:
            hi = theta
        if hi - lo <= tol:
            break
    # lo <= theta*, and D(x_theta, query) is non-decreasing in theta,
    # hence D(x_lo, query) <= D(x_theta*, query) = the true minimum.
    return divergence.divergence(x_lo, query)


def ball_intersects_range(
    divergence: DecomposableBregmanDivergence,
    center: np.ndarray,
    ball_radius: float,
    query: np.ndarray,
    range_radius: float,
    max_iter: int = 48,
) -> bool:
    """Decide whether ``B(center, ball_radius)`` can intersect the query
    range ``{ x : D(x, query) <= range_radius }`` -- with early exit.

    This is the secant/bisection intersection test of Cayton (2009) that
    the paper's range queries use.  Unlike computing the full minimum,
    the decision usually resolves in a handful of iterations:

    * any dual-geodesic point that is simultaneously inside the ball and
      inside the range proves intersection (certain YES);
    * any certified lower bound above ``range_radius`` proves disjoint
      (certain NO).

    Conservative on iteration exhaustion (returns ``True``), so range
    queries stay sound.
    """
    center = np.asarray(center, dtype=float)
    query = np.asarray(query, dtype=float)
    if range_radius < 0.0:
        return False
    ball_radius = max(ball_radius, 0.0)
    if divergence.divergence(query, center) <= ball_radius:
        return True  # query itself is in the ball
    if divergence.divergence(center, query) <= range_radius:
        return True  # ball center is in the range

    grad_center = divergence.phi_prime(center)
    grad_query = divergence.phi_prime(query)
    lo, hi = 0.0, 1.0  # D(x_lo, center) >= R >= D(x_hi, center)
    for _ in range(max_iter):
        theta = 0.5 * (lo + hi)
        x_theta = divergence.gradient_inverse(
            theta * grad_center + (1.0 - theta) * grad_query
        )
        inside_ball = divergence.divergence(x_theta, center) <= ball_radius
        d_query = divergence.divergence(x_theta, query)
        if inside_ball:
            if d_query <= range_radius:
                return True  # witness point in both sets
            hi = theta
        else:
            if d_query > range_radius:
                return False  # certified lower bound beats the range
            lo = theta
        if hi - lo <= 1e-12:
            break
    return True  # undecided within budget: keep the node (sound)


class BatchRangeProber:
    """Batched ball-vs-range tests with the query-side terms hoisted out.

    One prober serves a whole traversal: the per-query constants that the
    scalar :func:`ball_intersects_range` re-derives at every node
    (``grad f(q)``, ``f(q)``, ``<q, grad f(q)>``) are computed once here,
    so each node visit costs a handful of fused array expressions over
    the queries still active on that subtree.  The decision logic is the
    scalar test's, run in lockstep for every active query: any
    dual-geodesic witness inside both sets is a certain YES, any
    certified lower bound beyond the range a certain NO, and queries drop
    out of the bisection as soon as they resolve (undecided stays YES, so
    pruning remains sound).

    The fused arithmetic can round differently from the scalar test by
    ~1 ulp, so a borderline node may be kept/dropped differently; both
    answers are sound (certified), so candidate sets may differ at the
    margin but final kNN results never do.
    """

    def __init__(
        self,
        divergence: DecomposableBregmanDivergence,
        queries: np.ndarray,
        range_radii: np.ndarray,
        max_iter: int = 48,
    ) -> None:
        self.divergence = divergence
        self.queries = np.atleast_2d(np.asarray(queries, dtype=float))
        self.range_radii = np.asarray(range_radii, dtype=float)
        self.max_iter = int(max_iter)
        self.grad_q = np.asarray(divergence.phi_prime(self.queries), dtype=float)
        self.f_q = np.sum(divergence.phi(self.queries), axis=1)
        self.q_dot_grad_q = np.einsum("ij,ij->i", self.queries, self.grad_q)

    def intersects(
        self, center: np.ndarray, ball_radius: float, active: np.ndarray | None = None
    ) -> np.ndarray:
        """Which of the ``active`` queries' ranges may the ball intersect?

        Returns a boolean mask aligned with ``active`` (default: all
        queries); ``True`` means the node must be kept for that query.
        """
        if active is None:
            active = np.arange(self.queries.shape[0])
        center = np.atleast_2d(np.asarray(center, dtype=float))
        return self.intersects_pairs(
            center,
            np.array([float(ball_radius)]),
            np.zeros(active.size, dtype=int),
            np.asarray(active, dtype=int),
        )

    def intersects_pairs(
        self,
        centers: np.ndarray,
        ball_radii: np.ndarray,
        node_idx: np.ndarray,
        query_idx: np.ndarray,
    ) -> np.ndarray:
        """Decide many (ball, query) pairs in one fused bisection.

        ``centers``/``ball_radii`` describe ``K`` balls; pair ``p`` tests
        ball ``node_idx[p]`` against query ``query_idx[p]``'s range.  A
        whole tree level's tests collapse into one call, so the Python
        overhead of the traversal is per *level*, not per (node, query).

        Returns a boolean array over the pairs (``True`` = may intersect).
        """
        div = self.divergence
        centers = np.atleast_2d(np.asarray(centers, dtype=float))
        ball_radii = np.maximum(np.asarray(ball_radii, dtype=float), 0.0)
        n_pairs = node_idx.size

        out = np.zeros(n_pairs, dtype=bool)
        radii = self.range_radii[query_idx]
        considered = radii >= 0.0  # negative range: certain NO
        if not considered.any():
            return out

        # Node-side constants (once per ball, not per pair).
        f_c = np.sum(div.phi(centers), axis=1)
        grad_c = np.asarray(div.phi_prime(centers), dtype=float)
        c_dot_grad_c = np.einsum("ij,ij->i", centers, grad_c)

        # Pair-aligned gathers of both sides.
        pair_q = self.queries[query_idx]
        pair_grad_q = self.grad_q[query_idx]
        pair_f_q = self.f_q[query_idx]
        pair_qgq = self.q_dot_grad_q[query_idx]
        pair_grad_c = grad_c[node_idx]
        pair_f_c = f_c[node_idx]
        pair_cgc = c_dot_grad_c[node_idx]
        pair_ball_r = ball_radii[node_idx]

        # Certain YES without bisection (the scalar fast paths):
        # query inside the ball, or ball center inside the range.
        d_query_center = np.maximum(
            pair_f_q - pair_f_c - np.einsum("ij,ij->i", pair_q, pair_grad_c) + pair_cgc,
            0.0,
        )
        d_center_query = np.maximum(
            pair_f_c
            - pair_f_q
            - np.einsum("ij,ij->i", pair_grad_q, centers[node_idx])
            + pair_qgq,
            0.0,
        )
        yes = considered & ((d_query_center <= pair_ball_r) | (d_center_query <= radii))
        out[yes] = True
        pending = np.flatnonzero(considered & ~yes)
        if pending.size == 0:
            return out

        lo = np.zeros(n_pairs)
        hi = np.ones(n_pairs)
        for _ in range(self.max_iter):
            theta = 0.5 * (lo[pending] + hi[pending])
            x_theta = div.gradient_inverse(
                theta[:, None] * pair_grad_c[pending]
                + (1.0 - theta)[:, None] * pair_grad_q[pending]
            )
            sum_phi_x = np.sum(div.phi(x_theta), axis=1)
            d_center = np.maximum(
                sum_phi_x
                - pair_f_c[pending]
                - np.einsum("ij,ij->i", x_theta, pair_grad_c[pending])
                + pair_cgc[pending],
                0.0,
            )
            d_query = np.maximum(
                sum_phi_x
                - pair_f_q[pending]
                - np.einsum("ij,ij->i", x_theta, pair_grad_q[pending])
                + pair_qgq[pending],
                0.0,
            )
            inside_ball = d_center <= pair_ball_r[pending]
            in_range = d_query <= radii[pending]

            witness = inside_ball & in_range  # point in both sets: certain YES
            out[pending[witness]] = True
            disjoint = ~inside_ball & ~in_range  # certified bound: certain NO

            hi[pending[inside_ball]] = theta[inside_ball]
            lo[pending[~inside_ball]] = theta[~inside_ball]
            converged = (hi[pending] - lo[pending]) <= 1e-12

            undecided = ~(witness | disjoint | converged)
            out[pending[converged & ~witness & ~disjoint]] = True  # sound default
            pending = pending[undecided]
            if pending.size == 0:
                return out
        out[pending] = True  # iteration budget exhausted: keep the node (sound)
        return out


def batch_ball_intersects_range(
    divergence: DecomposableBregmanDivergence,
    center: np.ndarray,
    ball_radius: float,
    queries: np.ndarray,
    range_radii: np.ndarray,
    max_iter: int = 48,
) -> np.ndarray:
    """Vectorised :func:`ball_intersects_range` over a batch of queries.

    One-shot convenience wrapper around :class:`BatchRangeProber`; for
    repeated tests against many nodes (a tree traversal), build one
    prober and reuse it so the query-side constants are paid once.
    """
    return BatchRangeProber(divergence, queries, range_radii, max_iter).intersects(
        center, ball_radius
    )


def project_to_ball(
    divergence: DecomposableBregmanDivergence,
    center: np.ndarray,
    radius: float,
    query: np.ndarray,
    tol: float = 1e-9,
    max_iter: int = 64,
) -> np.ndarray:
    """Approximate Bregman projection of ``query`` onto ``B(center, radius)``.

    Returns the dual-geodesic point with ``D(x, center)`` closest to the
    radius -- the constrained minimiser of ``D(., query)``.  If the query
    is already inside the ball it is returned unchanged.
    """
    center = np.asarray(center, dtype=float)
    query = np.asarray(query, dtype=float)
    if divergence.divergence(query, center) <= radius:
        return query

    grad_center = divergence.phi_prime(center)
    grad_query = divergence.phi_prime(query)
    lo, hi = 0.0, 1.0
    x_best = center
    for _ in range(max_iter):
        theta = 0.5 * (lo + hi)
        x_theta = divergence.gradient_inverse(
            theta * grad_center + (1.0 - theta) * grad_query
        )
        if divergence.divergence(x_theta, center) >= radius:
            lo = theta
            x_best = x_theta
        else:
            hi = theta
            x_best = x_theta
        if hi - lo <= tol:
            break
    return x_best
