"""Bregman balls: the cluster primitive of BB-trees.

A Bregman ball ``B(mu, R)`` is the set of points whose divergence *to*
the center is at most the radius: ``{ x : D_f(x, mu) <= R }``.  The
center sits in the divergence's second argument, matching both the
Bregman-centroid property (the minimiser of ``sum_i D(x_i, c)`` over
``c`` is the mean) and the paper's BB-tree construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..divergences.base import DecomposableBregmanDivergence
from .projection import min_divergence_to_ball

__all__ = ["BregmanBall"]


@dataclass
class BregmanBall:
    """A Bregman ball ``{ x : D_f(x, center) <= radius }``."""

    center: np.ndarray
    radius: float

    def __post_init__(self) -> None:
        self.center = np.asarray(self.center, dtype=float)
        self.radius = float(max(self.radius, 0.0))

    @classmethod
    def covering(
        cls, divergence: DecomposableBregmanDivergence, points: np.ndarray
    ) -> "BregmanBall":
        """Smallest centroid-centered ball covering ``points``."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        center = divergence.centroid(points)
        radius = float(np.max(divergence.batch_divergence(points, center)))
        return cls(center=center, radius=radius)

    def contains(
        self, divergence: DecomposableBregmanDivergence, point: np.ndarray
    ) -> bool:
        """Whether ``point`` lies in the ball (divergence to center <= R)."""
        return divergence.divergence(point, self.center) <= self.radius + 1e-12

    def min_divergence(
        self, divergence: DecomposableBregmanDivergence, query: np.ndarray
    ) -> float:
        """Certified lower bound on ``D(x, query)`` over ball members."""
        return min_divergence_to_ball(divergence, self.center, self.radius, query)

    def intersects_range(
        self,
        divergence: DecomposableBregmanDivergence,
        query: np.ndarray,
        range_radius: float,
    ) -> bool:
        """Can the ball contain a point with ``D(x, query) <= range_radius``?

        This is the ball-vs-query-range test the range query uses to decide
        whether to explore a subtree (Cayton 2009).
        """
        return self.min_divergence(divergence, query) <= range_radius

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BregmanBall(d={self.center.size}, radius={self.radius:.4g})"
