"""Cauchy-inequality upper bounds (paper Section 4, Algorithms 1-3).

For a decomposable divergence the per-subspace divergence expands to

    D_f(x, y) = alpha_x + alpha_y + beta_xy + beta_yy

with

    alpha_x  =  sum_j phi(x_j)            (point, precomputable)
    gamma_x  =  sum_j x_j^2               (point, precomputable)
    alpha_y  = -sum_j phi(y_j)            (query)
    beta_yy  =  sum_j y_j * phi'(y_j)     (query)
    delta_y  =  sum_j phi'(y_j)^2         (query)
    beta_xy  = -sum_j x_j * phi'(y_j)     (cross term, *not* precomputable)

The Cauchy-Schwarz inequality bounds the cross term,
``beta_xy <= sqrt(gamma_x * delta_y)``, giving Theorem 1's upper bound

    D_f(x, y) <= alpha_x + alpha_y + beta_yy + sqrt(gamma_x * delta_y).

Points are transformed offline into tuples ``P(x) = (alpha_x, gamma_x)``
(Algorithm 2) and the query online into a triple
``Q(y) = (alpha_y, beta_yy, delta_y)`` (Algorithm 3); the bound is then an
O(1) combination (Algorithm 1).  Summing per-subspace bounds bounds the
full-space divergence (Theorem 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..divergences.base import DecomposableBregmanDivergence

__all__ = [
    "PointTuple",
    "QueryTriple",
    "QueryTripleBatch",
    "transform_point",
    "transform_points",
    "transform_query",
    "transform_queries",
    "compute_upper_bound",
    "batch_upper_bounds",
    "cross_term",
]


@dataclass(frozen=True)
class PointTuple:
    """Precomputed per-point summary ``P(x) = (alpha_x, gamma_x)``."""

    alpha: float
    gamma: float


@dataclass(frozen=True)
class QueryTriple:
    """Per-query summary ``Q(y) = (alpha_y, beta_yy, delta_y)``."""

    alpha: float
    beta_yy: float
    delta: float


@dataclass(frozen=True)
class QueryTripleBatch:
    """Column-stacked query triples for a batch: arrays of shape ``(B,)``.

    The batch analogue of :class:`QueryTriple`; row ``b`` holds query
    ``b``'s ``(alpha_y, beta_yy, delta_y)``.
    """

    alpha: np.ndarray
    beta_yy: np.ndarray
    delta: np.ndarray

    def __len__(self) -> int:
        return int(self.alpha.shape[0])

    def row(self, b: int) -> QueryTriple:
        """The scalar triple of query ``b`` (for per-query hooks)."""
        return QueryTriple(
            alpha=float(self.alpha[b]),
            beta_yy=float(self.beta_yy[b]),
            delta=float(self.delta[b]),
        )


def transform_point(
    divergence: DecomposableBregmanDivergence, x: np.ndarray
) -> PointTuple:
    """Algorithm 2 (single subvector): ``x -> (sum phi(x), sum x^2)``."""
    x = np.asarray(x, dtype=float)
    return PointTuple(
        alpha=float(np.sum(divergence.phi(x))),
        gamma=float(np.dot(x, x)),
    )


def transform_points(
    divergence: DecomposableBregmanDivergence, points: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised Algorithm 2 over the rows of ``points``.

    Returns ``(alpha, gamma)`` arrays of shape ``(n,)``.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    alpha = np.sum(divergence.phi(points), axis=1)
    gamma = np.einsum("ij,ij->i", points, points)
    return alpha, gamma


def transform_query(
    divergence: DecomposableBregmanDivergence, y: np.ndarray
) -> QueryTriple:
    """Algorithm 3 (single subvector): ``y -> (alpha_y, beta_yy, delta_y)``.

    Implemented as the one-row case of :func:`transform_queries` so the
    single-query and batched paths produce bitwise-identical triples.
    """
    y = np.asarray(y, dtype=float)
    batch = transform_queries(divergence, y[None, :])
    return batch.row(0)


def transform_queries(
    divergence: DecomposableBregmanDivergence, queries: np.ndarray
) -> QueryTripleBatch:
    """Vectorised Algorithm 3 over the rows of ``queries``."""
    queries = np.atleast_2d(np.asarray(queries, dtype=float))
    grads = divergence.phi_prime(queries)
    return QueryTripleBatch(
        alpha=-np.sum(divergence.phi(queries), axis=1),
        beta_yy=np.einsum("ij,ij->i", queries, grads),
        delta=np.einsum("ij,ij->i", grads, grads),
    )


def compute_upper_bound(point: PointTuple, query: QueryTriple) -> float:
    """Algorithm 1 (``UBCompute``): Theorem 1's upper bound from summaries."""
    return point.alpha + query.alpha + query.beta_yy + float(
        np.sqrt(max(point.gamma * query.delta, 0.0))
    )


def batch_upper_bounds(
    alpha: np.ndarray, gamma: np.ndarray, query: QueryTriple
) -> np.ndarray:
    """Vectorised Algorithm 1 over precomputed point summaries."""
    alpha = np.asarray(alpha, dtype=float)
    gamma = np.asarray(gamma, dtype=float)
    return alpha + query.alpha + query.beta_yy + np.sqrt(
        np.maximum(gamma * query.delta, 0.0)
    )


def cross_term(
    divergence: DecomposableBregmanDivergence, x: np.ndarray, y: np.ndarray
) -> float:
    """The exact cross term ``beta_xy = -sum_j x_j phi'(y_j)``.

    Used by the approximate extension (Section 8), which models the
    distribution of ``beta_xy`` to shrink the Cauchy relaxation.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    return -float(np.dot(x, divergence.phi_prime(y)))
