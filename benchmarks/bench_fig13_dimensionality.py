"""Fig. 13: impact of dimensionality (fonts, d = 10..400)."""

from __future__ import annotations

import pytest

from conftest import column, rows_by
from repro import BrePartitionConfig, BrePartitionIndex
from repro.datasets import load_dataset
from repro.eval.experiments import experiment_fig13_dimensionality


@pytest.fixture(scope="module")
def report(save_report):
    rep = experiment_fig13_dimensionality(dims=(10, 50, 100, 200, 400), k=20, n=1200)
    save_report("fig13_dimensionality", rep)
    return rep


def test_fig13_grid_complete(report):
    assert len(report.rows) == 5 * 3


def test_fig13_io_grows_with_d(report):
    """Paper shape: every method's I/O increases with dimensionality
    (more bytes per point means more pages even at equal pruning)."""
    for method in ("BP", "VAF", "BBT"):
        ios = column(report, rows_by(report, method=method), "io_pages")
        assert ios[-1] >= ios[0]


def test_fig13_m_adapts_to_d(report):
    bp_rows = rows_by(report, method="BP")
    ms = column(report, bp_rows, "M")
    ds_ = column(report, bp_rows, "d")
    assert all(1 <= m <= d for m, d in zip(ms, ds_))


@pytest.mark.parametrize("d", [50, 400])
def test_benchmark_bp_by_dimensionality(benchmark, d):
    ds = load_dataset("fonts", n=1200, d=d, n_queries=5, seed=0)
    index = BrePartitionIndex(
        ds.divergence,
        BrePartitionConfig(n_partitions=4, page_size_bytes=ds.page_size_bytes, seed=0),
    ).build(ds.points)
    benchmark.pedantic(index.search, args=(ds.queries[0], 20), rounds=3, iterations=1)
