"""Batch engine micro-benchmark: search_batch vs looped search.

ISSUE 1 acceptance: at batch size 64 the vectorized batch engine must
deliver >= 3x the throughput of per-query ``search`` while returning
bitwise-identical results.  The workload is the fonts proxy (the paper's
Itakura-Saito benchmark) with M=16 partitions, where per-query BB-forest
traversal dominates and the batch engine's shared level-synchronous
bisections pay off most.

Run directly (``python benchmarks/bench_batch_throughput.py``) or via
pytest from this directory.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import BrePartitionConfig, BrePartitionIndex, LinearScanIndex
from repro.datasets import load_dataset

BATCH_SIZE = 64
K = 10
N_PARTITIONS = 16
TARGET_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def workload():
    dataset = load_dataset("fonts", n=1500, n_queries=BATCH_SIZE, seed=0)
    index = BrePartitionIndex(
        dataset.divergence,
        BrePartitionConfig(
            n_partitions=N_PARTITIONS,
            page_size_bytes=dataset.page_size_bytes,
            seed=0,
        ),
    ).build(dataset.points)
    return dataset, index


def measure(dataset, index) -> dict:
    queries = dataset.queries[:BATCH_SIZE]
    # Warm both paths (allocator, caches) before timing.
    index.search(queries[0], K)
    index.search_batch(queries[:2], K)

    start = time.perf_counter()
    singles = [index.search(query, K) for query in queries]
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch = index.search_batch(queries, K)
    batch_seconds = time.perf_counter() - start

    return {
        "singles": singles,
        "batch": batch,
        "loop_seconds": loop_seconds,
        "batch_seconds": batch_seconds,
        "speedup": loop_seconds / batch_seconds,
        "loop_qps": BATCH_SIZE / loop_seconds,
        "batch_qps": BATCH_SIZE / batch_seconds,
    }


def test_batch_matches_loop(workload):
    dataset, index = workload
    result = measure(dataset, index)
    for single, batched in zip(result["singles"], result["batch"]):
        np.testing.assert_array_equal(single.ids, batched.ids)
        np.testing.assert_array_equal(single.divergences, batched.divergences)


@pytest.mark.slow
def test_batch_throughput_at_least_3x(workload):
    dataset, index = workload
    # Best of three runs on each side to damp scheduler noise.
    best = max(measure(dataset, index)["speedup"] for _ in range(3))
    print(f"\nbatch speedup over looped search: {best:.2f}x (target {TARGET_SPEEDUP}x)")
    assert best >= TARGET_SPEEDUP


def test_batch_saves_io(workload):
    dataset, index = workload
    batch = index.search_batch(dataset.queries[:BATCH_SIZE], K)
    assert batch.stats.pages_saved > 0
    assert batch.stats.pages_read <= index.datastore.n_pages


def main() -> None:
    dataset = load_dataset("fonts", n=1500, n_queries=BATCH_SIZE, seed=0)
    index = BrePartitionIndex(
        dataset.divergence,
        BrePartitionConfig(
            n_partitions=N_PARTITIONS,
            page_size_bytes=dataset.page_size_bytes,
            seed=0,
        ),
    ).build(dataset.points)
    result = measure(dataset, index)
    batch = result["batch"]
    print(f"dataset: {dataset!r}, M={index.n_partitions}, k={K}, B={BATCH_SIZE}")
    print(
        f"looped search : {result['loop_seconds']:.3f}s "
        f"({result['loop_qps']:.1f} queries/s)"
    )
    print(
        f"search_batch  : {result['batch_seconds']:.3f}s "
        f"({result['batch_qps']:.1f} queries/s)"
    )
    print(f"speedup       : {result['speedup']:.2f}x")
    print(
        f"I/O           : {batch.stats.pages_read} pages coalesced vs "
        f"{batch.stats.pages_read_unshared} unshared "
        f"({batch.stats.pages_saved} saved)"
    )

    scan = LinearScanIndex(
        dataset.divergence, page_size_bytes=dataset.page_size_bytes
    ).build(dataset.points)
    queries = dataset.queries[:BATCH_SIZE]
    scan.search(queries[0], K)
    start = time.perf_counter()
    for query in queries:
        scan.search(query, K)
    scan_loop = time.perf_counter() - start
    start = time.perf_counter()
    scan.search_batch(queries, K)
    scan_batch = time.perf_counter() - start
    print(
        f"linear scan   : loop {scan_loop:.3f}s vs batch {scan_batch:.3f}s "
        f"({scan_loop / scan_batch:.2f}x)"
    )


if __name__ == "__main__":
    main()
