"""Micro-batched serving benchmark (asyncio front-end, closed loop).

ISSUE 4 acceptance, recorded in ``BENCH_serve.json``: with modeled I/O,
micro-batched serving sustains >= 2x the throughput of per-request
(B=1) serving at 64 concurrent closed-loop clients.  The benchmark
sweeps concurrency x ``max_wait_ms`` over the
:class:`~repro.serve.MicroBatcher` to show the latency/throughput knob:

* **per-request baseline**: ``max_batch_size=1`` through the *same*
  machinery -- every request runs its own ``search_batch(B=1)`` and
  pays the modeled page latency of its whole candidate working set
  (:class:`~repro.storage.io_stats.IOCostModel`, charged by the Fetch
  stage as a GIL-releasing sleep);
* **micro-batched arms**: requests arriving within one accumulation
  window coalesce, so the batch charges the *union* of their candidate
  pages once -- the per-request I/O bill collapses (see
  ``mean_pages_per_request``) and throughput rises, at the price of the
  accumulation wait on lightly-loaded queues.

Responses are bitwise identical to direct per-query ``search`` in every
arm (the pipeline's parity contract); timing rows never re-check it,
the parity tests and the smoke mode do.

ISSUE 5 adds the **concurrency sweep**: with per-batch
:class:`~repro.storage.io_stats.QueryScope` accounting, the batcher can
overlap ``max_concurrent_batches`` in-flight batches on a worker pool --
their modeled I/O sleeps overlap like requests against real disks, so
the same wait/batch-size settings serve more requests per second.  The
sweep runs {1, 2, 4} in-flight batches at 64 clients and records the
overlap speedup (target >= 1.5x over the single-worker server).

Running the file directly rewrites ``BENCH_serve.json`` at the repo
root.  ``--smoke`` runs a seconds-scale pass with I/O latency disabled
that asserts *parity and accounting only* (every response equals direct
search -- including with 4 overlapped in-flight batches; dispatched
batch sizes sum to the request count and respect ``max_batch_size``;
the B=1 arm dispatches one batch per request; queue-depth admission
rejects exactly the over-limit burst in fast-fail mode and serves
everything in wait mode) -- no wall-clock claims, so it cannot flake on
loaded CI runners.  Under pytest, the parity checks run by default and
the throughput assertions are ``slow``-marked.

ISSUE 8 adds the **chaos arm** (``--chaos``): serve through an R=2
replicated store while a simulated disk is killed *mid-run* by a
scheduled ``fail_after_n_calls`` fault, assert every response stays
bitwise identical to the fault-free twin with exact page accounting
(failover re-charges dedup in the same scope), then heal the disk and
serve again.  Parity and accounting only -- no timing claims.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.serve import make_serving_index, run_closed_loop

DATASET = "fonts"
N_POINTS = 600
K = 10

N_CLIENTS_SWEEP = (8, 64)
WAIT_SWEEP_MS = (0.5, 2.0, 8.0)
MAX_BATCH = 64
REQUESTS_PER_CLIENT = 2
IOPS = 4000.0
TARGET_SERVE_SPEEDUP = 2.0

# concurrency sweep: a batch cap well under the client count so several
# batches form per wave, leaving overlap for the worker pool to exploit
CONCURRENCY_SWEEP = (1, 2, 4)
CONCURRENCY_CLIENTS = 64
CONCURRENCY_MAX_BATCH = 16
CONCURRENCY_WAIT_MS = 2.0
TARGET_OVERLAP_SPEEDUP = 1.5

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def _strip(row: dict) -> dict:
    """Timing-row form for the JSON payload (no result objects, rounded)."""
    slim = {key: value for key, value in row.items() if key != "results"}
    slim.pop("batch_sizes", None)
    return {
        key: (round(value, 6) if isinstance(value, float) else value)
        for key, value in slim.items()
    }


def serve_arms(index, queries, n_clients: int) -> dict:
    """One concurrency level: the B=1 baseline plus the wait-time sweep."""
    baseline = run_closed_loop(
        index,
        queries,
        K,
        n_clients=n_clients,
        requests_per_client=REQUESTS_PER_CLIENT,
        max_batch_size=1,
        max_wait_ms=0.0,
    )
    batched = []
    for wait_ms in WAIT_SWEEP_MS:
        row = run_closed_loop(
            index,
            queries,
            K,
            n_clients=n_clients,
            requests_per_client=REQUESTS_PER_CLIENT,
            max_batch_size=MAX_BATCH,
            max_wait_ms=wait_ms,
        )
        row["speedup_vs_per_request"] = (
            row["throughput_rps"] / baseline["throughput_rps"]
        )
        batched.append(row)
    return {"baseline": baseline, "batched": batched}


def concurrency_arms(index, queries) -> list:
    """The in-flight-batch sweep: same deadlines, wider worker pools."""
    rows = []
    for workers in CONCURRENCY_SWEEP:
        row = run_closed_loop(
            index,
            queries,
            K,
            n_clients=CONCURRENCY_CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT,
            max_batch_size=CONCURRENCY_MAX_BATCH,
            max_wait_ms=CONCURRENCY_WAIT_MS,
            max_concurrent_batches=workers,
        )
        rows.append(row)
    single = rows[0]["throughput_rps"]
    for row in rows:
        row["speedup_vs_single_worker"] = (
            row["throughput_rps"] / single if single > 0 else float("inf")
        )
    return rows


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


def test_served_responses_match_direct_search():
    dataset, index = make_serving_index(
        dataset_name=DATASET, n=400, n_queries=16, iops=None
    )
    queries = dataset.queries
    reference = [index.search(query, K) for query in queries]
    row = run_closed_loop(
        index,
        queries,
        K,
        n_clients=16,
        requests_per_client=2,
        max_batch_size=8,
        max_wait_ms=2.0,
        keep_results=True,
    )
    for slot, served in enumerate(row["results"]):
        expected = reference[slot % len(queries)]
        np.testing.assert_array_equal(expected.ids, served.ids)
        np.testing.assert_array_equal(expected.divergences, served.divergences)
    assert sum(row["batch_sizes"]) == row["requests"]
    assert max(row["batch_sizes"]) <= 8


@pytest.mark.slow
def test_microbatching_at_least_2x_at_64_clients():
    dataset, index = make_serving_index(
        dataset_name=DATASET, n=N_POINTS, iops=IOPS
    )
    arms = serve_arms(index, dataset.queries, n_clients=64)
    best = max(row["speedup_vs_per_request"] for row in arms["batched"])
    print(
        f"\nmicro-batched serving at 64 clients: best {best:.2f}x over "
        f"per-request (target {TARGET_SERVE_SPEEDUP}x)"
    )
    assert best >= TARGET_SERVE_SPEEDUP


@pytest.mark.slow
def test_overlapped_batches_at_least_1p5x_at_64_clients():
    # ISSUE 5 acceptance: overlapping in-flight batches beat the
    # single-worker server under modeled I/O (the sleeps release the
    # GIL, so the win does not depend on core count)
    dataset, index = make_serving_index(
        dataset_name=DATASET, n=N_POINTS, iops=IOPS
    )
    rows = concurrency_arms(index, dataset.queries)
    best = max(row["speedup_vs_single_worker"] for row in rows)
    print(
        f"\noverlapped in-flight batches at {CONCURRENCY_CLIENTS} clients: "
        f"best {best:.2f}x over one worker (target {TARGET_OVERLAP_SPEEDUP}x)"
    )
    assert best >= TARGET_OVERLAP_SPEEDUP


# ----------------------------------------------------------------------
# smoke / main
# ----------------------------------------------------------------------


def smoke() -> None:
    """Seconds-scale CI pass: parity + accounting, no timing.

    Drives 64 concurrent closed-loop clients through both serving modes
    with I/O latency disabled and asserts every response is bitwise
    identical to direct per-query ``search``, dispatched batch sizes sum
    exactly to the request count under the ``max_batch_size`` cap, and
    per-request mode degenerates to one batch per request.  ISSUE 5
    coverage: the same parity and accounting hold with 4 overlapped
    in-flight batches, and queue-depth admission sheds exactly the
    over-limit burst in ``overflow="reject"`` mode while ``"wait"``
    mode backpressures and serves everything.
    """
    import asyncio

    from repro.exceptions import ServerOverloadedError
    from repro.serve import MicroBatcher

    dataset, index = make_serving_index(
        dataset_name=DATASET, n=400, n_queries=32, iops=None
    )
    queries = dataset.queries
    reference = [index.search(query, K) for query in queries]

    batched = run_closed_loop(
        index,
        queries,
        K,
        n_clients=64,
        requests_per_client=1,
        max_batch_size=16,
        max_wait_ms=20.0,
        keep_results=True,
    )
    for slot, served in enumerate(batched["results"]):
        expected = reference[slot % len(queries)]
        np.testing.assert_array_equal(expected.ids, served.ids)
        np.testing.assert_array_equal(expected.divergences, served.divergences)
    assert sum(batched["batch_sizes"]) == batched["requests"]
    assert max(batched["batch_sizes"]) <= 16
    assert batched["mean_batch_size"] > 1.0  # coalescing actually happened

    per_request = run_closed_loop(
        index,
        queries,
        K,
        n_clients=8,
        requests_per_client=2,
        max_batch_size=1,
        max_wait_ms=0.0,
        keep_results=True,
    )
    assert per_request["n_batches"] == per_request["requests"]
    assert set(per_request["batch_sizes"]) == {1}
    for slot, served in enumerate(per_request["results"]):
        expected = reference[slot % len(queries)]
        np.testing.assert_array_equal(expected.ids, served.ids)

    # overlapped in-flight batches: same parity and accounting with a
    # 4-wide worker pool (per-batch QueryScope keeps pages exact)
    overlapped = run_closed_loop(
        index,
        queries,
        K,
        n_clients=64,
        requests_per_client=1,
        max_batch_size=8,
        max_wait_ms=20.0,
        max_concurrent_batches=4,
        keep_results=True,
    )
    for slot, served in enumerate(overlapped["results"]):
        expected = reference[slot % len(queries)]
        np.testing.assert_array_equal(expected.ids, served.ids)
        np.testing.assert_array_equal(expected.divergences, served.divergences)
    assert sum(overlapped["batch_sizes"]) == overlapped["requests"]
    assert max(overlapped["batch_sizes"]) <= 8
    assert overlapped["n_cancelled"] == overlapped["n_failed"] == 0
    assert overlapped["n_rejected"] == 0

    # queue-depth admission: a 12-request burst against depth 4 with the
    # batch cap above it (so the queue cannot drain mid-burst) sheds
    # exactly the 8 over-limit requests in reject mode...
    async def burst(overflow: str):
        async with MicroBatcher(
            index,
            K,
            max_batch_size=64,
            max_wait_ms=5.0,
            max_queue_depth=4,
            overflow=overflow,
        ) as batcher:
            results = await asyncio.gather(
                *(batcher.search(query) for query in queries[:12]),
                return_exceptions=True,
            )
        return results, batcher.stats

    rejected_results, rejected_stats = asyncio.run(burst("reject"))
    shed = [r for r in rejected_results if isinstance(r, ServerOverloadedError)]
    assert len(shed) == 8 and rejected_stats.n_rejected == 8
    assert rejected_stats.n_requests == 4  # only admitted requests dispatch
    for slot, served in enumerate(rejected_results[:4]):
        np.testing.assert_array_equal(reference[slot].ids, served.ids)

    # ...while wait mode backpressures the same burst and serves it all
    waited_results, waited_stats = asyncio.run(burst("wait"))
    assert waited_stats.n_rejected == 0
    assert waited_stats.n_requests == 12
    for slot, served in enumerate(waited_results):
        np.testing.assert_array_equal(reference[slot].ids, served.ids)

    print(
        f"smoke OK: {batched['requests'] + per_request['requests'] + overlapped['requests']} "
        f"served responses bitwise-identical to direct search "
        f"(incl. {overlapped['n_batches']} batches overlapped on 4 workers); "
        f"batch sizes {batched['batch_sizes']} under cap 16, B=1 mode "
        f"dispatched {per_request['n_batches']} singleton batches; "
        f"queue depth 4 shed {rejected_stats.n_rejected} of 12 burst "
        f"requests in reject mode and served all 12 in wait mode"
    )


def chaos_smoke() -> None:
    """Seconds-scale chaos pass: replicated serving through a mid-run
    disk kill, parity + accounting only (no timing claims).

    An R=2 store serves 32 clients while disk 0 dies after a scheduled
    number of charge calls (``fail_after_n_calls``); the dead disk's
    breaker opens (``breaker_threshold=1``), every response must equal
    the fault-free twin bitwise, and the lifetime page totals must
    match the twin exactly -- failed-over re-charges dedup in the same
    query scope.  The disk is then healed and serving re-checked.
    """
    import asyncio

    from repro.serve import MicroBatcher
    from repro.storage import FaultInjector

    N_SHARDS, REPLICAS = 4, 2
    dataset, clean = make_serving_index(
        dataset_name=DATASET,
        n=400,
        n_queries=32,
        iops=None,
        n_shards=N_SHARDS,
        replication_factor=REPLICAS,
    )
    _, chaotic = make_serving_index(
        dataset_name=DATASET,
        n=400,
        n_queries=32,
        iops=None,
        n_shards=N_SHARDS,
        replication_factor=REPLICAS,
        breaker_threshold=1,
        breaker_reset_s=0.05,
    )
    injector = FaultInjector(seed=0)
    chaotic.attach_fault_injector(injector)
    queries = dataset.queries

    # deterministic accounting wave: the same four batch chunks on both
    # indexes; disk 0 is allowed two more charge calls, so it dies
    # mid-run -- between the second and third chunk
    injector.set_plan(shard=0, fail_after_n_calls=2)
    n_failovers = 0
    pages_chaotic = pages_clean = 0
    for start in range(0, len(queries), 8):
        chunk = queries[start : start + 8]
        want = clean.search_batch(chunk, K)
        got = chaotic.search_batch(chunk, K)
        for expected, served in zip(want.results, got.results):
            np.testing.assert_array_equal(expected.ids, served.ids)
            np.testing.assert_array_equal(
                expected.divergences, served.divergences
            )
        assert got.failures == {}
        assert got.stats.pages_read == want.stats.pages_read
        assert got.stats.pages_read_per_shard == want.stats.pages_read_per_shard
        n_failovers += got.stats.n_failovers
        pages_chaotic += got.stats.pages_read
        pages_clean += want.stats.pages_read
    assert n_failovers > 0  # the kill actually re-routed reads
    assert chaotic.tracker.total_pages_read == clean.tracker.total_pages_read
    assert chaotic.shard_health.n_breaker_opens >= 1
    store = chaotic.datastore
    assert sum(store.shard_pages_read) == store.tracker.total_pages_read
    assert [sum(row) for row in store.replica_pages_read] == (
        store.shard_pages_read
    )

    # serving wave: the asyncio front-end rides the same failover while
    # the disk stays dead, bitwise equal to direct fault-free search
    reference = [clean.search(query, K) for query in queries]

    async def serve():
        async with MicroBatcher(chaotic, K, max_batch_size=8) as batcher:
            results = await asyncio.gather(
                *(batcher.search(query) for query in queries)
            )
            return results, batcher.stats

    results, stats = asyncio.run(serve())
    for expected, served in zip(reference, results):
        np.testing.assert_array_equal(expected.ids, served.ids)
        np.testing.assert_array_equal(expected.divergences, served.divergences)
    assert stats.n_failed == 0
    assert stats.n_breaker_opens >= 1
    # the opened breaker is surfaced, and routing steered around the
    # dead disk without ever marking a served request as failed
    assert stats.shard_health is not None
    assert stats.shard_health[0]["state"] != "closed"

    # heal and serve again: still exact, mirrors still sum exactly
    injector.heal(0)
    results, stats = asyncio.run(serve())
    for expected, served in zip(reference, results):
        np.testing.assert_array_equal(expected.ids, served.ids)
        np.testing.assert_array_equal(expected.divergences, served.divergences)
    assert stats.n_failed == 0
    assert sum(store.shard_pages_read) == store.tracker.total_pages_read
    assert [sum(row) for row in store.replica_pages_read] == (
        store.shard_pages_read
    )

    print(
        f"chaos OK: {len(queries)} batch + {2 * len(queries)} served "
        f"responses bitwise-identical to the fault-free twin across a "
        f"mid-run disk kill on an R={REPLICAS} store ({n_failovers} batch "
        f"failovers, {chaotic.shard_health.n_breaker_opens} breaker "
        f"open(s)); page accounting exact "
        f"({pages_chaotic} pages, twin {pages_clean})"
    )


def main() -> None:
    dataset, index = make_serving_index(dataset_name=DATASET, n=N_POINTS, iops=IOPS)
    queries = dataset.queries
    print(
        f"serving: {dataset!r}, M={index.n_partitions}, k={K}, "
        f"max_batch={MAX_BATCH}, {REQUESTS_PER_CLIENT} req/client, "
        f"{IOPS:.0f} IOPS modeled"
    )
    sweep = {}
    for n_clients in N_CLIENTS_SWEEP:
        arms = serve_arms(index, queries, n_clients)
        sweep[n_clients] = arms
        base = arms["baseline"]
        print(
            f"  clients={n_clients}: per-request {base['throughput_rps']:8.1f} "
            f"req/s (latency {base['mean_latency_ms']:.1f}ms, "
            f"pages/req {base['mean_pages_per_request']:.1f})"
        )
        for row in arms["batched"]:
            print(
                f"    wait={row['max_wait_ms']:4.1f}ms: "
                f"{row['throughput_rps']:8.1f} req/s "
                f"({row['speedup_vs_per_request']:5.2f}x)  "
                f"latency {row['mean_latency_ms']:6.1f}ms  "
                f"mean batch {row['mean_batch_size']:5.1f}  "
                f"pages/req {row['mean_pages_per_request']:5.1f}"
            )

    speedup_at_64 = max(
        row["speedup_vs_per_request"] for row in sweep[64]["batched"]
    )
    print(
        f"best micro-batching speedup at 64 clients: {speedup_at_64:.2f}x "
        f"(target {TARGET_SERVE_SPEEDUP}x)"
    )

    print(
        f"\nconcurrency sweep: {CONCURRENCY_CLIENTS} clients, "
        f"max_batch={CONCURRENCY_MAX_BATCH}, wait={CONCURRENCY_WAIT_MS}ms, "
        f"{len(CONCURRENCY_SWEEP)} worker-pool widths"
    )
    concurrency = concurrency_arms(index, queries)
    for row in concurrency:
        print(
            f"  in-flight={row['max_concurrent_batches']}: "
            f"{row['throughput_rps']:8.1f} req/s "
            f"({row['speedup_vs_single_worker']:5.2f}x vs 1 worker)  "
            f"latency {row['mean_latency_ms']:6.1f}ms  "
            f"mean batch {row['mean_batch_size']:5.1f}  "
            f"pages/req {row['mean_pages_per_request']:5.1f}"
        )
    overlap_speedup = max(row["speedup_vs_single_worker"] for row in concurrency)
    print(
        f"best overlap speedup: {overlap_speedup:.2f}x "
        f"(target {TARGET_OVERLAP_SPEEDUP}x)"
    )

    payload = {
        "benchmark": "serve_microbatching",
        "dataset": DATASET,
        "n_points": int(index.n_points),
        "dimensionality": int(dataset.points.shape[1]),
        "divergence": dataset.divergence.name,
        "k": K,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "max_batch_size": MAX_BATCH,
        "modeled_iops": IOPS,
        "target_speedup_at_64_clients": TARGET_SERVE_SPEEDUP,
        "best_speedup_at_64_clients": round(speedup_at_64, 3),
        "target_overlap_speedup": TARGET_OVERLAP_SPEEDUP,
        "best_overlap_speedup": round(overlap_speedup, 3),
        "concurrency_sweep": {
            "n_clients": CONCURRENCY_CLIENTS,
            "max_batch_size": CONCURRENCY_MAX_BATCH,
            "max_wait_ms": CONCURRENCY_WAIT_MS,
            "arms": [_strip(row) for row in concurrency],
        },
        "sweep": [
            {
                "n_clients": n_clients,
                "per_request_baseline": _strip(arms["baseline"]),
                "micro_batched": [_strip(row) for row in arms["batched"]],
            }
            for n_clients, arms in sweep.items()
        ],
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")


if __name__ == "__main__":
    ran_fast_mode = False
    if "--smoke" in sys.argv[1:]:
        smoke()
        ran_fast_mode = True
    if "--chaos" in sys.argv[1:]:
        chaos_smoke()
        ran_fast_mode = True
    if not ran_fast_mode:
        main()
