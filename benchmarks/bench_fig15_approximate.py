"""Fig. 15: the approximate solution (ABP vs exact BP vs Var)."""

from __future__ import annotations

import pytest

from conftest import column, rows_by
from repro import ApproximateBrePartitionIndex, BrePartitionConfig
from repro.datasets import load_dataset
from repro.eval.experiments import experiment_fig15_approximate


@pytest.fixture(scope="module")
def report(save_report):
    rep = experiment_fig15_approximate(
        dataset_name="normal", ks=(20, 60, 100), probabilities=(0.7, 0.8, 0.9), n=1500
    )
    save_report("fig15_approximate", rep)
    return rep


def test_fig15_grid_complete(report):
    # 3 k values x (BP + 3 ABP + Var) methods
    assert len(report.rows) == 3 * 5


def test_fig15_exact_bp_ratio_one(report):
    ratios = column(report, rows_by(report, method="BP"), "overall_ratio")
    assert all(abs(r - 1.0) < 1e-6 for r in ratios)


def test_fig15_overall_ratios_at_least_one(report):
    assert all(r >= 1.0 - 1e-9 for r in column(report, report.rows, "overall_ratio"))


def test_fig15_abp_io_not_above_bp(report):
    """Paper shape: shrunken radii mean ABP reads no more than exact BP."""
    for k in (20, 60, 100):
        bp_io = column(report, rows_by(report, method="BP", k=k), "io_pages")[0]
        for p in (0.7, 0.8, 0.9):
            abp_io = column(report, rows_by(report, method=f"ABP(p={p})", k=k), "io_pages")[0]
            assert abp_io <= bp_io + 1.0


def test_fig15_higher_p_higher_accuracy(report):
    """Paper shape: OR decreases (improves) as p increases, per k."""
    better = 0
    for k in (20, 60, 100):
        lo = column(report, rows_by(report, method="ABP(p=0.7)", k=k), "overall_ratio")[0]
        hi = column(report, rows_by(report, method="ABP(p=0.9)", k=k), "overall_ratio")[0]
        if hi <= lo + 1e-9:
            better += 1
    assert better >= 2


@pytest.mark.parametrize("p", [0.7, 0.9])
def test_benchmark_abp_search(benchmark, p):
    ds = load_dataset("normal", n=1500, n_queries=5, seed=0)
    index = ApproximateBrePartitionIndex(
        ds.divergence,
        probability=p,
        config=BrePartitionConfig(
            n_partitions=8, page_size_bytes=ds.page_size_bytes, seed=0
        ),
    ).build(ds.points)
    benchmark.pedantic(index.search, args=(ds.queries[0], 20), rounds=3, iterations=1)
