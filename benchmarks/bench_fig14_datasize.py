"""Fig. 14: impact of data size (sift proxy, n sweep, fixed M)."""

from __future__ import annotations

import pytest

from conftest import column, rows_by
from repro import BrePartitionConfig, BrePartitionIndex
from repro.datasets import load_dataset
from repro.eval.experiments import experiment_fig14_datasize


@pytest.fixture(scope="module")
def report(save_report):
    rep = experiment_fig14_datasize(sizes=(1000, 2000, 4000), k=20, m=8)
    save_report("fig14_datasize", rep)
    return rep


def test_fig14_grid_complete(report):
    assert len(report.rows) == 3 * 3


def test_fig14_io_grows_with_n(report):
    """Paper shape: near-linear growth of I/O in dataset size."""
    for method in ("BP", "VAF", "BBT"):
        ios = column(report, rows_by(report, method=method), "io_pages")
        assert ios[0] < ios[-1]


def test_fig14_growth_roughly_linear(report):
    """4x the data should cost between 1.5x and 8x the I/O (linear-ish)."""
    for method in ("BP", "BBT"):
        ios = column(report, rows_by(report, method=method), "io_pages")
        ratio = ios[-1] / max(ios[0], 1e-9)
        assert 1.5 <= ratio <= 8.0


@pytest.mark.parametrize("n", [1000, 4000])
def test_benchmark_bp_by_datasize(benchmark, n):
    ds = load_dataset("sift", n=n, n_queries=5, seed=0)
    index = BrePartitionIndex(
        ds.divergence,
        BrePartitionConfig(n_partitions=8, page_size_bytes=ds.page_size_bytes, seed=0),
    ).build(ds.points)
    benchmark.pedantic(index.search, args=(ds.queries[0], 20), rounds=3, iterations=1)
