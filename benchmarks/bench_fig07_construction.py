"""Fig. 7: index construction time for VAF, BP (BB-forest) and BBT."""

from __future__ import annotations

import pytest

from repro import BrePartitionConfig, BrePartitionIndex, VAFileIndex
from repro.datasets import load_dataset
from repro.eval.experiments import experiment_fig07_construction


@pytest.fixture(scope="module")
def report(save_report):
    rep = experiment_fig07_construction(n=1500)
    save_report("fig07_construction", rep)
    return rep


def test_fig07_all_datasets_present(report):
    assert len(report.rows) == 6


def test_fig07_vaf_fastest(report):
    """Paper shape: the VA-file builds fastest on every dataset."""
    vaf = report.headers.index("VAF")
    bp = report.headers.index("BP")
    bbt = report.headers.index("BBT")
    faster_count = sum(
        1 for row in report.rows if row[vaf] <= row[bp] and row[vaf] <= row[bbt]
    )
    assert faster_count >= 5  # allow one noisy dataset


def test_benchmark_vaf_build(benchmark):
    ds = load_dataset("sift", n=1000, n_queries=5, seed=0)
    benchmark.pedantic(
        lambda: VAFileIndex(
            ds.divergence, bits=8, page_size_bytes=ds.page_size_bytes
        ).build(ds.points),
        rounds=2,
        iterations=1,
    )


def test_benchmark_bp_build(benchmark):
    ds = load_dataset("sift", n=1000, n_queries=5, seed=0)
    benchmark.pedantic(
        lambda: BrePartitionIndex(
            ds.divergence,
            BrePartitionConfig(
                n_partitions=8, page_size_bytes=ds.page_size_bytes, seed=0
            ),
        ).build(ds.points),
        rounds=2,
        iterations=1,
    )
