"""Fig. 11: I/O cost vs k for BP, VAF and BBT."""

from __future__ import annotations

import pytest

from conftest import column, rows_by
from repro import BBTreeIndex, BrePartitionConfig, BrePartitionIndex, LinearScanIndex
from repro.datasets import load_dataset
from repro.eval.experiments import experiment_fig11_12_k_sweep


@pytest.fixture(scope="module")
def report(save_report):
    rep = experiment_fig11_12_k_sweep(dataset_name="fonts", ks=(20, 40, 60, 80, 100), n=1500)
    save_report("fig11_io_vs_k", rep)
    return rep


def test_fig11_grid_complete(report):
    assert len(report.rows) == 5 * 3


def test_fig11_bp_beats_linear_scan(report):
    ds = load_dataset("fonts", n=1500, n_queries=5, seed=0)
    scan = LinearScanIndex(ds.divergence, page_size_bytes=ds.page_size_bytes).build(ds.points)
    full = scan.datastore.n_pages
    bp_ios = column(report, rows_by(report, method="BP"), "io_pages")
    assert max(bp_ios) < full


def test_fig11_io_monotone_in_k(report):
    for method in ("BP", "VAF", "BBT"):
        ios = column(report, rows_by(report, method=method), "io_pages")
        assert ios[0] <= ios[-1] + 1.0  # k=20 <= k=100 (small noise ok)


def test_benchmark_bbt_search(benchmark):
    ds = load_dataset("fonts", n=1500, n_queries=5, seed=0)
    index = BBTreeIndex(ds.divergence, page_size_bytes=ds.page_size_bytes, seed=0).build(ds.points)
    benchmark.pedantic(index.search, args=(ds.queries[0], 20), rounds=3, iterations=1)
