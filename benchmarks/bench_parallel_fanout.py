"""Parallel shard fan-out + sparse refinement + process-pool benchmark.

ISSUE 3 + ISSUE 9 acceptance, three claims recorded in
``BENCH_parallel.json``:

1. **Fan-out**: with 4 shards and ``shard_workers=4``, end-to-end
   ``search_batch`` at B=64 runs >= 2x faster than the sequential
   fan-out (``shard_workers=1`` through the same engine).  The storage
   stack is simulated, so the benchmark models each shard as an
   independent disk serving ``IOPS`` random page reads per second
   (:class:`~repro.storage.io_stats.IOCostModel`; 400 IOPS/disk ~ cloud
   block storage / fast HDD random reads, paid as a GIL-releasing sleep
   inside each fan-out task).  Sequential fan-out waits the shards out
   one after another; parallel workers overlap the waits and each
   shard's slab scoring, like real independent spindles.  A zero-latency
   row is recorded too for transparency: on a single-core host it shows
   ~1x, because without I/O waits to overlap the arithmetic is
   GIL-serialised.

2. **Sparse refinement**: at B=256 on a *skewed-candidate* workload
   (per-query candidate sets Pareto-distributed: most tiny, a few huge
   -- the regime where the dense (union x B) kernel wastes nearly every
   cell) the sparse grouped kernel beats the dense blocked kernel.
   Candidate sets are synthesized at controlled density because the
   laptop-scale proxy's Theorem-1 bounds are anchor-dominated and keep
   ~75% of the file as candidates for every query; both kernels are
   measured on identical inputs and must return bitwise-identical
   results.

3. **Refine scaling** (ISSUE 9): on a compute-bound batch (B=64, zero
   modeled IOPS -- nothing to overlap, the regime where ``shard_workers``
   buys ~1x) the shared-memory multiprocess refinement backend
   (``refine_backend="process"``) scales the Refine stage across worker
   processes with bitwise-identical results at every width.  The
   slow-marked target is >= 2x end-to-end at 4 workers *on a >= 4-core
   host*; the checked-in JSON records whatever the measuring host could
   honestly show, annotated with its ``host_cpus`` (a 1-core host
   records a slowdown -- four processes sharing one core pay dispatch
   overhead for nothing, which is exactly why ``auto`` exists).  A
   combined row stacks shard fan-out (overlapping modeled I/O) with the
   process refine backend (overlapping compute) against the fully
   serial engine.

Running the file directly rewrites ``BENCH_parallel.json`` at the repo
root.  ``--smoke`` runs a seconds-scale end-to-end pass over the whole
{dense, sparse, auto} x {1, 4} shard-workers matrix plus the
{serial, process} x {1, 2} refine-backend matrix (skipped gracefully
where shared memory is unavailable) with parity and accounting
assertions but no timing claims -- what CI exercises on every push.
Under pytest, parity checks run by default and the timing assertions
are ``slow``-marked.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro import BrePartitionConfig, BrePartitionIndex
from repro.datasets import load_dataset
from repro.exec import shared_memory_available
from repro.storage import DiskAccessTracker

DATASET = "fonts"
N_POINTS = 2000  # the fonts proxy caps at 1744 rows
K = 10
REPS = 3

# fan-out arm: B=64, 4 simulated disks at HDD-class random-read latency;
# 16KB pages (leaf capacity pinned so the forest is page-size-agnostic)
# give the batch a few hundred page reads to fan out.
B_FANOUT = 64
N_SHARDS = 4
FANOUT_WORKERS = (1, 2, 4)
IOPS_PER_DISK = 400.0
FANOUT_PAGE_BYTES = 16384
FANOUT_LEAF_CAPACITY = 40
FANOUT_PARTITIONS = 4
TARGET_FANOUT_SPEEDUP = 2.0

# refine-scaling arm: same B=64 batch, I/O free -- pure compute.
REFINE_WIDTHS = (1, 2, 4)
TARGET_REFINE_SPEEDUP = 2.0

# sparse arm: B=256, Pareto-skewed candidate sets (mean ~32 of a
# ~1744-row union, heavy tail up to the full file).
B_SPARSE = 256
SPARSE_PARTITIONS = 8
SPARSE_SIZE_BASE = 8
SPARSE_SIZE_TAIL = 1.3

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _best_of(fn, reps: int = REPS) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# fan-out arm
# ----------------------------------------------------------------------


def make_fanout_index(n_points: int = N_POINTS, iops: float | None = IOPS_PER_DISK):
    dataset = load_dataset(DATASET, n=n_points, n_queries=B_FANOUT, seed=0)
    index = BrePartitionIndex(
        dataset.divergence,
        BrePartitionConfig(
            n_partitions=FANOUT_PARTITIONS,
            page_size_bytes=FANOUT_PAGE_BYTES,
            leaf_capacity=FANOUT_LEAF_CAPACITY,
            seed=0,
            n_shards=N_SHARDS,
            simulated_io_iops=iops,
        ),
    ).build(dataset.points)
    return dataset, index


def measure_fanout(dataset, index, workers_list=FANOUT_WORKERS):
    queries = dataset.queries[:B_FANOUT]
    rows = []
    reference = None
    for workers in workers_list:
        index.config.shard_workers = workers
        batch = index.search_batch(queries, K)
        if reference is None:
            reference = batch
        else:
            for a, b in zip(reference, batch):
                np.testing.assert_array_equal(a.ids, b.ids)
                np.testing.assert_array_equal(a.divergences, b.divergences)
        seconds = _best_of(lambda: index.search_batch(queries, K))
        rows.append(
            {
                "shard_workers": workers,
                "seconds": seconds,
                "pages_per_shard": list(batch.stats.pages_read_per_shard),
                "shard_seconds": [round(s, 4) for s in batch.stats.shard_seconds],
            }
        )
    base = rows[0]["seconds"]
    for row in rows:
        row["speedup_vs_sequential"] = base / row["seconds"]
    return rows


# ----------------------------------------------------------------------
# refine-scaling arm (process-pool backend)
# ----------------------------------------------------------------------


def host_cpus() -> int:
    """CPUs this process may actually run on (honesty annotation)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def measure_refine_scaling(dataset, index, widths=REFINE_WIDTHS):
    """Serial vs process backend on a zero-IOPS (compute-bound) batch.

    Asserts bitwise parity at every pool width; returns timing rows with
    speedups relative to the serial backend.
    """
    queries = dataset.queries[:B_FANOUT]
    index.config.refine_backend = "serial"
    reference = index.search_batch(queries, K)
    assert reference.stats.refine_backend == "serial"
    serial_seconds = _best_of(lambda: index.search_batch(queries, K))
    rows = [
        {
            "backend": "serial",
            "refine_workers": 1,
            "seconds": serial_seconds,
            "speedup_vs_serial": 1.0,
        }
    ]
    if not shared_memory_available():
        return rows
    index.config.refine_backend = "process"
    index.config.min_refine_rows_per_worker = 1
    for width in widths:
        index.config.refine_workers = width
        batch = index.search_batch(queries, K)
        assert batch.stats.refine_backend == "process"
        assert batch.stats.refine_workers == width
        assert batch.stats.pages_read == reference.stats.pages_read
        for a, b in zip(reference, batch):
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.divergences, b.divergences)
        seconds = _best_of(lambda: index.search_batch(queries, K))
        rows.append(
            {
                "backend": "process",
                "refine_workers": width,
                "seconds": seconds,
                "speedup_vs_serial": serial_seconds / seconds,
            }
        )
    index.config.refine_backend = "serial"
    index.close()
    return rows


def measure_combined(dataset, index):
    """Everything on: shard fan-out over modeled I/O + process refine.

    One row comparing the fully serial engine (1 shard worker, serial
    refine) against the fully parallel one (4 shard workers overlapping
    disk waits, 4 refine processes overlapping compute), bitwise-equal
    results asserted.
    """
    queries = dataset.queries[:B_FANOUT]
    index.config.shard_workers = 1
    index.config.refine_backend = "serial"
    reference = index.search_batch(queries, K)
    serial_seconds = _best_of(lambda: index.search_batch(queries, K))
    row = {"serial_seconds": serial_seconds}
    if shared_memory_available():
        index.config.shard_workers = 4
        index.config.refine_backend = "process"
        index.config.refine_workers = 4
        index.config.min_refine_rows_per_worker = 1
        batch = index.search_batch(queries, K)
        for a, b in zip(reference, batch):
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.divergences, b.divergences)
        parallel_seconds = _best_of(lambda: index.search_batch(queries, K))
        row.update(
            parallel_seconds=parallel_seconds,
            shard_workers=4,
            refine_workers=4,
            speedup_vs_serial=serial_seconds / parallel_seconds,
        )
    index.close()
    return row


# ----------------------------------------------------------------------
# sparse arm
# ----------------------------------------------------------------------


def make_sparse_index(n_points: int = N_POINTS):
    dataset = load_dataset(DATASET, n=n_points, n_queries=B_SPARSE, seed=0)
    index = BrePartitionIndex(
        dataset.divergence,
        BrePartitionConfig(
            n_partitions=SPARSE_PARTITIONS,
            page_size_bytes=dataset.page_size_bytes,
            seed=0,
        ),
    ).build(dataset.points)
    return dataset, index


def make_skewed_candidates(index, n_queries: int, seed: int = 1):
    """Pareto-skewed candidate sets over contiguous id runs.

    Models a selective filter at scale: most queries keep a few dozen
    leaf-local candidates, a heavy tail keeps hundreds-to-everything.
    """
    n = index.n_points
    rng = np.random.default_rng(seed)
    sizes = np.minimum(
        n, (SPARSE_SIZE_BASE * (1.0 + rng.pareto(SPARSE_SIZE_TAIL, size=n_queries))).astype(int)
    )
    starts = rng.integers(0, n, size=n_queries)
    return [
        np.unique((starts[q] + np.arange(max(K, sizes[q]))) % n)
        for q in range(n_queries)
    ]


def measure_sparse(dataset, index, n_queries: int = B_SPARSE):
    queries = dataset.queries[:n_queries]
    candidates = make_skewed_candidates(index, n_queries)
    sizes = np.array([ids.size for ids in candidates])
    union = np.unique(np.concatenate(candidates))
    density = float(sizes.mean() / union.size)
    index.datastore.charge_pages_for(candidates)

    results = {}
    timings = {}
    for kernel in ("dense", "sparse"):
        index.config.refine_kernel = kernel
        results[kernel] = index._refine_batch(candidates, queries, K)
        timings[kernel] = _best_of(
            lambda: index._refine_batch(candidates, queries, K)
        )
    for (a_ids, a_divs), (b_ids, b_divs) in zip(
        results["dense"], results["sparse"]
    ):
        np.testing.assert_array_equal(a_ids, b_ids)
        np.testing.assert_array_equal(a_divs, b_divs)

    index.config.refine_kernel = "auto"
    auto_choice = index._choose_refine_kernel(candidates, union.size, n_queries)
    return {
        "batch_size": n_queries,
        "mean_candidates": float(sizes.mean()),
        "max_candidates": int(sizes.max()),
        "union_candidates": int(union.size),
        "density": density,
        "auto_kernel": auto_choice,
        "dense_seconds": timings["dense"],
        "sparse_seconds": timings["sparse"],
        "speedup": timings["dense"] / timings["sparse"],
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def fanout_workload():
    return make_fanout_index(n_points=600, iops=None)


def test_fanout_workers_bitwise_identical(fanout_workload):
    dataset, index = fanout_workload
    measure_fanout(dataset, index, workers_list=(1, 4))  # asserts parity


def test_sparse_matches_dense_on_skewed_candidates():
    dataset, index = make_sparse_index(n_points=600)
    measure_sparse(dataset, index, n_queries=64)  # asserts parity


def test_refine_backends_bitwise_identical():
    if not shared_memory_available():
        pytest.skip("no POSIX shared memory on this platform")
    dataset, index = make_fanout_index(n_points=600, iops=None)
    # widths (1, 2) keep this seconds-scale; parity is what matters here
    measure_refine_scaling(dataset, index, widths=(1, 2))  # asserts parity


@pytest.mark.slow
def test_parallel_fanout_at_least_2x_at_64():
    dataset, index = make_fanout_index()
    rows = measure_fanout(dataset, index, workers_list=(1, 4))
    speedup = rows[-1]["speedup_vs_sequential"]
    print(
        f"\nparallel fan-out speedup at B={B_FANOUT}, S={N_SHARDS}, "
        f"workers=4: {speedup:.2f}x (target {TARGET_FANOUT_SPEEDUP}x)"
    )
    assert speedup >= TARGET_FANOUT_SPEEDUP


@pytest.mark.slow
def test_refine_scaling_at_least_2x_at_4():
    if not shared_memory_available():
        pytest.skip("no POSIX shared memory on this platform")
    if host_cpus() < 4:
        pytest.skip(
            f"host exposes {host_cpus()} CPU(s); the >= "
            f"{TARGET_REFINE_SPEEDUP}x multi-core target needs >= 4"
        )
    dataset, index = make_fanout_index(iops=None)
    rows = measure_refine_scaling(dataset, index, widths=(4,))
    speedup = rows[-1]["speedup_vs_serial"]
    print(
        f"\nprocess refine speedup at B={B_FANOUT}, 4 workers: "
        f"{speedup:.2f}x (target {TARGET_REFINE_SPEEDUP}x)"
    )
    assert speedup >= TARGET_REFINE_SPEEDUP


@pytest.mark.slow
def test_sparse_beats_dense_at_256():
    dataset, index = make_sparse_index()
    row = measure_sparse(dataset, index)
    print(
        f"\nsparse refinement at B={B_SPARSE} (density {row['density']:.3f}): "
        f"{row['speedup']:.2f}x over dense"
    )
    assert row["auto_kernel"] == "sparse"
    assert row["speedup"] > 1.0


# ----------------------------------------------------------------------
# smoke / main
# ----------------------------------------------------------------------


def smoke() -> None:
    """Seconds-scale CI pass: the full kernel x worker matrix, no timing.

    Exercises the parallel path end to end -- fan-out charging on worker
    threads, both refinement kernels, the auto dispatcher, modeled I/O
    latency -- and asserts bitwise parity with per-query search plus
    exact per-shard accounting.  No wall-clock assertions, so it cannot
    flake on loaded CI runners.
    """
    dataset = load_dataset(DATASET, n=400, n_queries=16, seed=0)
    queries = dataset.queries
    tracker = DiskAccessTracker()
    index = BrePartitionIndex(
        dataset.divergence,
        BrePartitionConfig(
            n_partitions=3,
            page_size_bytes=8192,
            leaf_capacity=16,
            seed=0,
            n_shards=N_SHARDS,
            simulated_io_iops=200_000.0,
        ),
        tracker=tracker,
    ).build(dataset.points)
    reference = [index.search(query, K) for query in queries]
    combos = 0
    for kernel in ("dense", "sparse", "auto"):
        for workers in (1, 4):
            index.config.refine_kernel = kernel
            index.config.shard_workers = workers
            batch = index.search_batch(queries, K)
            assert sum(batch.stats.pages_read_per_shard) == batch.stats.pages_coalesced
            assert len(batch.stats.shard_seconds) == N_SHARDS
            for single, batched in zip(reference, batch):
                np.testing.assert_array_equal(single.ids, batched.ids)
                np.testing.assert_array_equal(
                    single.divergences, batched.divergences
                )
            combos += 1
    assert sum(index.datastore.shard_pages_read) == tracker.total_pages_read

    # process-backend matrix: {serial, process} x {1, 2} pool workers,
    # parity plus page accounting (process workers never charge pages)
    backend_combos = 0
    if shared_memory_available():
        index.config.refine_kernel = "auto"
        index.config.shard_workers = 1
        index.config.min_refine_rows_per_worker = 1
        serial_pages = None
        for backend in ("serial", "process"):
            for pool_workers in (1, 2):
                index.config.refine_backend = backend
                index.config.refine_workers = pool_workers
                batch = index.search_batch(queries, K)
                assert batch.stats.refine_backend == backend
                if serial_pages is None:
                    serial_pages = batch.stats.pages_read
                assert batch.stats.pages_read == serial_pages
                for single, batched in zip(reference, batch):
                    np.testing.assert_array_equal(single.ids, batched.ids)
                    np.testing.assert_array_equal(
                        single.divergences, batched.divergences
                    )
                backend_combos += 1
        index.close()
        backend_note = f", {backend_combos} backend/pool-width combos"
    else:  # no POSIX shared memory: the process matrix has nothing to run
        backend_note = ", process backend skipped (no shared memory)"
    print(
        f"smoke OK: {combos} kernel/worker combos bitwise-identical to "
        f"per-query search{backend_note}, shard accounting exact "
        f"({tracker.total_pages_read} pages across {N_SHARDS} shards)"
    )


def main() -> None:
    dataset, index = make_fanout_index()
    print(
        f"fan-out: {dataset!r}, M={index.n_partitions}, k={K}, B={B_FANOUT}, "
        f"S={N_SHARDS}, page={FANOUT_PAGE_BYTES}B, "
        f"{IOPS_PER_DISK:.0f} IOPS/disk modeled"
    )
    fanout_rows = measure_fanout(dataset, index)
    for row in fanout_rows:
        print(
            f"  workers={row['shard_workers']}: {row['seconds'] * 1e3:8.1f}ms  "
            f"speedup {row['speedup_vs_sequential']:5.2f}x  "
            f"pages/shard {row['pages_per_shard']}"
        )

    nolat_dataset, nolat_index = make_fanout_index(iops=None)
    nolat_rows = measure_fanout(nolat_dataset, nolat_index, workers_list=(1, 4))
    print(
        f"  (zero-latency control: workers=4 speedup "
        f"{nolat_rows[-1]['speedup_vs_sequential']:.2f}x -- GIL-bound on a "
        f"single-core host, the win comes from overlapping I/O waits)"
    )

    scaling_dataset, scaling_index = make_fanout_index(iops=None)
    scaling_rows = measure_refine_scaling(scaling_dataset, scaling_index)
    cpus = host_cpus()
    print(
        f"refine scaling: B={B_FANOUT}, zero IOPS (compute-bound), "
        f"host exposes {cpus} CPU(s)"
    )
    for row in scaling_rows:
        print(
            f"  {row['backend']:7s} workers={row['refine_workers']}: "
            f"{row['seconds'] * 1e3:8.1f}ms  "
            f"speedup {row['speedup_vs_serial']:5.2f}x"
        )
    if cpus < 4:
        print(
            f"  (host exposes {cpus} CPU(s): process workers share cores, "
            f"so the >= {TARGET_REFINE_SPEEDUP}x multi-core target is "
            "unmeasurable here; the slow-marked pytest entry asserts it "
            "on capable hosts)"
        )

    combined_dataset, combined_index = make_fanout_index()
    combined_row = measure_combined(combined_dataset, combined_index)
    if "parallel_seconds" in combined_row:
        print(
            f"combined: serial {combined_row['serial_seconds'] * 1e3:.1f}ms vs "
            f"4 shard workers + 4 refine processes "
            f"{combined_row['parallel_seconds'] * 1e3:.1f}ms "
            f"({combined_row['speedup_vs_serial']:.2f}x)"
        )

    sparse_dataset, sparse_index = make_sparse_index()
    sparse_row = measure_sparse(sparse_dataset, sparse_index)
    print(
        f"sparse: B={sparse_row['batch_size']}, mean cand "
        f"{sparse_row['mean_candidates']:.0f} of union "
        f"{sparse_row['union_candidates']} (density {sparse_row['density']:.3f}, "
        f"auto -> {sparse_row['auto_kernel']})\n"
        f"  dense {sparse_row['dense_seconds'] * 1e3:7.1f}ms  "
        f"sparse {sparse_row['sparse_seconds'] * 1e3:7.1f}ms  "
        f"speedup {sparse_row['speedup']:5.2f}x"
    )

    payload = {
        "benchmark": "parallel_fanout",
        "dataset": DATASET,
        "n_points": int(sparse_index.n_points),
        "dimensionality": int(sparse_dataset.points.shape[1]),
        "divergence": sparse_dataset.divergence.name,
        "k": K,
        "reps": REPS,
        "fanout": {
            "batch_size": B_FANOUT,
            "n_shards": N_SHARDS,
            "n_partitions": FANOUT_PARTITIONS,
            "page_size_bytes": FANOUT_PAGE_BYTES,
            "modeled_iops_per_disk": IOPS_PER_DISK,
            "target_speedup_workers4": TARGET_FANOUT_SPEEDUP,
            "results": [
                {
                    "shard_workers": row["shard_workers"],
                    "seconds": round(row["seconds"], 6),
                    "speedup_vs_sequential": round(
                        row["speedup_vs_sequential"], 3
                    ),
                    "pages_per_shard": row["pages_per_shard"],
                }
                for row in fanout_rows
            ],
            "zero_latency_control": {
                "shard_workers": 4,
                "speedup_vs_sequential": round(
                    nolat_rows[-1]["speedup_vs_sequential"], 3
                ),
            },
        },
        "refine_scaling": {
            "batch_size": B_FANOUT,
            "modeled_iops": None,
            "host_cpus": cpus,
            "target_speedup_workers4": TARGET_REFINE_SPEEDUP,
            "note": (
                "speedups are honest measurements on the host above; the "
                ">= 2x multi-core claim is asserted by the slow-marked "
                "pytest entry on hosts with >= 4 CPUs"
            ),
            "results": [
                {
                    "backend": row["backend"],
                    "refine_workers": row["refine_workers"],
                    "seconds": round(row["seconds"], 6),
                    "speedup_vs_serial": round(row["speedup_vs_serial"], 3),
                }
                for row in scaling_rows
            ],
        },
        "combined_fanout_plus_refine": {
            key: (round(value, 6) if isinstance(value, float) else value)
            for key, value in combined_row.items()
        },
        "sparse_refinement": {
            key: (round(value, 6) if isinstance(value, float) else value)
            for key, value in sparse_row.items()
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        smoke()
    else:
        main()
