"""Fig. 12: running time vs k for BP, VAF and BBT (audio proxy)."""

from __future__ import annotations

import pytest

from conftest import column, rows_by
from repro import VAFileIndex
from repro.datasets import load_dataset
from repro.eval.experiments import experiment_fig11_12_k_sweep


@pytest.fixture(scope="module")
def report(save_report):
    rep = experiment_fig11_12_k_sweep(dataset_name="audio", ks=(20, 40, 60, 80, 100), n=1500)
    save_report("fig12_time_vs_k", rep)
    return rep


def test_fig12_grid_complete(report):
    assert len(report.rows) == 15


def test_fig12_times_positive(report):
    assert all(t > 0 for t in column(report, report.rows, "time_ms"))


def test_fig12_bp_time_competitive(report):
    """Paper shape: BP's running time beats BBT's on high-dimensional
    data (both are ball-tree methods; BP searches low-dim subspaces)."""
    bp = sum(column(report, rows_by(report, method="BP"), "time_ms"))
    bbt = sum(column(report, rows_by(report, method="BBT"), "time_ms"))
    assert bp <= bbt * 1.5  # generous: shapes, not absolutes


def test_benchmark_vaf_search(benchmark):
    ds = load_dataset("audio", n=1500, n_queries=5, seed=0)
    index = VAFileIndex(ds.divergence, bits=8, page_size_bytes=ds.page_size_bytes).build(ds.points)
    benchmark.pedantic(index.search, args=(ds.queries[0], 20), rounds=3, iterations=1)
