"""Table 4: cost-model calibration and Theorem 4's optimised M."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.eval.experiments import experiment_table4_partitions
from repro.partitioning import calibrate_cost_model, optimal_partitions


@pytest.fixture(scope="module")
def report(save_report):
    rep = experiment_table4_partitions(n=1500)
    save_report("table4_partitions", rep)
    return rep


def test_table4_covers_all_datasets(report):
    assert len(report.rows) == 6


def test_table4_m_within_bounds(report):
    d_col = report.headers.index("d")
    m_col = report.headers.index("our_M")
    for row in report.rows:
        assert 1 <= row[m_col] <= row[d_col]


def test_table4_alpha_is_decay(report):
    a_col = report.headers.index("alpha")
    for row in report.rows:
        assert 0.0 < row[a_col] < 1.0


def test_benchmark_calibration(benchmark):
    ds = load_dataset("audio", n=1000, n_queries=5, seed=0)

    def calibrate():
        params = calibrate_cost_model(
            ds.divergence, ds.points, n_samples=10, rng=np.random.default_rng(0)
        )
        return optimal_partitions(ds.n, ds.d, params)

    m = benchmark.pedantic(calibrate, rounds=2, iterations=1)
    assert 1 <= m <= ds.d
