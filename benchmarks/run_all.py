#!/usr/bin/env python
"""Regenerate every paper table/figure and write EXPERIMENTS.md.

Runs the experiments of :mod:`repro.eval.experiments` at the default
laptop scale, saves each report under ``benchmarks/results/`` and
rewrites ``EXPERIMENTS.md`` with the measured rows next to the paper's
expected shapes.

Usage:  python benchmarks/run_all.py [--quick] [--only fig10,fig15]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.eval.experiments import ALL_EXPERIMENTS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
EXPERIMENTS_MD = pathlib.Path(__file__).parent.parent / "EXPERIMENTS.md"

PAPER_SHAPES = {
    "table4": (
        "Table 4 lists the optimised M per dataset (22-50 at full scale). "
        "Reproduced mechanism: calibrate (A, alpha, beta), take the argmin of "
        "T(M).  On the prunable proxies (audio/fonts/deep/sift) the selected "
        "M lands in the same range as the paper's; on the i.i.d. synthetics "
        "(normal/uniform) the measured pruning does not improve with M, so "
        "the optimiser correctly degenerates to M = 1."
    ),
    "fig07": (
        "Paper: VAF builds fastest everywhere; Bregman-ball indexes (BP's "
        "BB-forest, BBT) are about an order slower because of the clustering. "
        "Reproduced: same ordering."
    ),
    "fig08_09": (
        "Paper: I/O falls with M and flattens; running time is U-shaped with "
        "minimum at Theorem 4's M.  Measured: per-subspace candidate sets do "
        "shrink with M, but at this scale the union across subspaces offsets "
        "the gain, so I/O is flat-to-slightly-rising and time rises with M "
        "(the Python tree-traversal term dominates).  The crossover the paper "
        "sees requires the strong per-point bound decay its full-scale real "
        "datasets exhibit; see DESIGN.md Section 4."
    ),
    "fig10": (
        "Paper: PCCP cuts I/O and running time by 20-30% over contiguous "
        "partitioning.  Reproduced: PCCP reduces the candidate union and I/O "
        "on the correlated proxies."
    ),
    "fig11_12": (
        "Paper: BP has the lowest I/O and time for every k; BBT is worst in "
        "high dimensions; all grow slowly with k.  Reproduced: all methods "
        "exact, I/O monotone in k; BP beats the linear scan and is "
        "time-competitive.  Deviation: at n~10^3, BBT's best-first search "
        "with per-query page deduplication is I/O-stronger than at the "
        "paper's 10^5-10^7 scale, and the VA-file's approximation scan is "
        "proportionally cheaper, so the absolute ordering between the three "
        "can flip per dataset."
    ),
    "fig13": (
        "Paper: I/O and time grow with d for all methods; BP grows slowest, "
        "BBT only competitive at low d.  Reproduced: growth with d and "
        "Theorem-4 M adapting to d."
    ),
    "fig14": (
        "Paper: near-linear growth in n, BP lowest, M insensitive to n. "
        "Reproduced: near-linear I/O growth with fixed M."
    ),
    "fig15": (
        "Paper: higher p gives overall ratio closer to 1 at more I/O/time; "
        "ABP beats Var at matched accuracy.  Reproduced: ABP's I/O is never "
        "above exact BP and falls as p falls, with overall ratio staying "
        "within the paper's 1.0-1.1 band; Var trades a little recall for "
        "fewer pages.  Deviation: ABP's CPU time exceeds BP's here because "
        "the radius-widening bisection re-probes the forest -- at the "
        "paper's scale the refinement savings dominate that overhead."
    ),
    "fig15_audio": (
        "Supplementary run on the prunable audio proxy: on i.i.d. normal "
        "data at this scale page-granularity I/O saturates, so ABP's I/O "
        "savings only become visible on data with layout locality.  "
        "Measured here: I/O falls monotonically as p falls, accuracy intact."
    ),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--only",
        default=None,
        help="comma-separated experiment keys (default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="unused placeholder for CI symmetry"
    )
    args = parser.parse_args(argv)

    keys = list(ALL_EXPERIMENTS)
    if args.only:
        keys = [k.strip() for k in args.only.split(",") if k.strip()]

    RESULTS_DIR.mkdir(exist_ok=True)
    reports = {}
    for key in keys:
        start = time.perf_counter()
        print(f"[run_all] {key} ...", flush=True)
        report = ALL_EXPERIMENTS[key]()
        reports[key] = report
        (RESULTS_DIR / f"{key}.txt").write_text(report.to_text() + "\n")
        print(report.to_text())
        print(f"[run_all] {key} done in {time.perf_counter() - start:.1f}s\n", flush=True)

    if set(keys) == set(ALL_EXPERIMENTS):
        _write_experiments_md(reports)
        print(f"[run_all] wrote {EXPERIMENTS_MD}")
    return 0


def _write_experiments_md(reports) -> None:
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Generated by `python benchmarks/run_all.py` on the laptop-scale",
        "proxies (see DESIGN.md §3 for the experiment index and §4 for the",
        "data substitutions).  Absolute values are not comparable to the",
        "paper (n is 2-4k here vs 50k-11M there; Python vs Java; simulated",
        "disk vs SSD); the *shapes* are the reproduction target and each",
        "section states what reproduced and what deviates.",
        "",
    ]
    for key, report in reports.items():
        lines.append(f"## {report.experiment}")
        lines.append("")
        lines.append(f"*Reference:* {report.paper_reference}")
        lines.append("")
        lines.append(f"*Paper vs measured:* {PAPER_SHAPES.get(key, '')}")
        lines.append("")
        lines.append("```")
        lines.append(report.to_text())
        lines.append("```")
        lines.append("")
    EXPERIMENTS_MD.write_text("\n".join(lines))


if __name__ == "__main__":
    sys.exit(main())
