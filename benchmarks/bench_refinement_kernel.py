"""Refinement-kernel micro-benchmark: blocked cross-divergence vs looped.

ISSUE 2 acceptance: at batch size 64 the blocked (union x queries)
cross-divergence kernel must refine at least 2x faster than the PR 1
per-query loop while returning bitwise-identical ids and divergences.
The workload is the fonts proxy (the paper's Itakura-Saito benchmark,
d=400) where per-pair evaluation is expensive and the cache-blocked
kernel pays off most; batch sizes 1, 16, 64 and 256 map the regime.

The B=256 row is expected to be near 1x: the trailing queries of the
fonts workload have tiny candidate sets, and the dense kernel scores
the full (union x queries) matrix regardless, so candidate-set skew
erodes the win.  The row is kept as an honest data point.

The ``mid_density`` entry (ISSUE 9 satellite) settles a proposed dense
optimization: gathering only per-query candidate rows when fewer than
half the (union x B) cells are real pairs.  The union contains no dead
rows by construction -- every union row is some query's candidate -- so
a per-query row gather of real pairs *is* the sparse grouped kernel.
The entry therefore measures dense vs sparse on a ~0.5-density workload
on identical inputs: dense wins there (the grouped kernel's gathers
cost more than the dense kernel's wasted-but-sequential cells), which
is why the auto threshold stays at 0.3 and no separate gather path was
added (measured, dropped).

Running the file directly rewrites ``BENCH_refinement.json`` in the
repo root (the machine-readable perf trajectory); pytest only checks
parity plus the slow-marked 2x assertion.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import BrePartitionConfig, BrePartitionIndex
from repro.core.transforms import determine_search_bounds_batch, pad_radii
from repro.datasets import load_dataset

DATASET = "fonts"
N_POINTS = 2000
N_PARTITIONS = 8
K = 10
BATCH_SIZES = (1, 16, 64, 256)
ASSERT_BATCH = 64
TARGET_SPEEDUP = 2.0
REPS = 3

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_refinement.json"


@pytest.fixture(scope="module")
def workload():
    return make_workload()


def make_workload():
    # Cycle one large allocation first: freeing a big mmap'd block raises
    # glibc's dynamic mmap threshold, after which the looped path's
    # multi-MB temporaries are heap-recycled instead of mmap'd (and
    # page-faulted) on every call.  Without this, whichever path is
    # measured first in a fresh process pays allocator costs the other
    # does not, inflating the comparison.
    _warm = np.zeros(1 << 22)
    del _warm

    dataset = load_dataset(DATASET, n=N_POINTS, n_queries=max(BATCH_SIZES), seed=0)
    index = BrePartitionIndex(
        dataset.divergence,
        BrePartitionConfig(
            n_partitions=N_PARTITIONS,
            page_size_bytes=dataset.page_size_bytes,
            seed=0,
        ),
    ).build(dataset.points)
    return dataset, index


def filter_candidates(index, queries, k):
    """Replay the batch filter stage (Algorithm 6 steps 1-3).

    The refinement helpers take candidate id sets as input; this
    reproduces exactly what ``search_batch`` feeds them so the kernels
    are measured on real filter output rather than synthetic sets.
    """
    triples = index.transforms.query_triples_batch(queries)
    ub_tensor = index.transforms.upper_bound_tensor(triples)
    search_bounds = determine_search_bounds_batch(ub_tensor, k)
    radii = pad_radii(search_bounds.radii)
    sub_matrices = index.partitioning.split_matrix(queries)
    candidates, _ = index.forest.range_union_batch(
        sub_matrices, radii, point_filter=index.config.point_filter
    )
    return candidates


def _best_of(fn, reps: int = REPS) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(dataset, index, batch_size: int) -> dict:
    queries = dataset.queries[:batch_size]
    candidates = filter_candidates(index, queries, K)
    blocked = index._refine_batch(candidates, queries, K)
    looped = index._refine_batch_looped(candidates, queries, K)

    loop_seconds = _best_of(lambda: index._refine_batch_looped(candidates, queries, K))
    block_seconds = _best_of(lambda: index._refine_batch(candidates, queries, K))

    union = np.unique(np.concatenate(candidates)) if candidates else np.empty(0)
    return {
        "batch_size": batch_size,
        "looped": looped,
        "blocked": blocked,
        "loop_seconds": loop_seconds,
        "block_seconds": block_seconds,
        "speedup": loop_seconds / block_seconds,
        "mean_candidates": float(np.mean([c.size for c in candidates])),
        "union_candidates": int(union.size),
        "block_rows": index.config.refinement_block_for(
            batch_size, dataset.points.shape[1]
        ),
    }


MID_DENSITY = 0.5
MID_DENSITY_BATCH = 64
MID_DENSITY_UNION = 800


def measure_mid_density(dataset, index) -> dict:
    """Dense vs sparse at ~0.5 density: the proposed-gather regime.

    Each of B queries keeps a uniform half of a shared row pool, so
    about half the (union x B) cells are real pairs -- exactly where a
    "gather candidate rows only" dense variant would target.  Since that
    variant is the sparse grouped kernel (no dead union rows exist),
    this measures it directly, on bitwise-identical outputs.
    """
    queries = dataset.queries[:MID_DENSITY_BATCH]
    rng = np.random.default_rng(7)
    pool = np.arange(min(index.n_points, MID_DENSITY_UNION))
    per_query = int(MID_DENSITY * pool.size)
    candidates = [
        np.sort(rng.choice(pool, size=per_query, replace=False))
        for _ in range(MID_DENSITY_BATCH)
    ]
    union = np.unique(np.concatenate(candidates))
    density = float(
        np.mean([c.size for c in candidates]) / union.size
    )
    index.datastore.charge_pages_for(candidates)

    results, timings = {}, {}
    for kernel in ("dense", "sparse"):
        index.config.refine_kernel = kernel
        results[kernel] = index._refine_batch(candidates, queries, K)
        timings[kernel] = _best_of(
            lambda: index._refine_batch(candidates, queries, K)
        )
    index.config.refine_kernel = "auto"
    for (a_ids, a_divs), (b_ids, b_divs) in zip(
        results["dense"], results["sparse"]
    ):
        np.testing.assert_array_equal(a_ids, b_ids)
        np.testing.assert_array_equal(a_divs, b_divs)
    return {
        "batch_size": MID_DENSITY_BATCH,
        "density": density,
        "union_candidates": int(union.size),
        "dense_seconds": timings["dense"],
        "sparse_seconds": timings["sparse"],
        "dense_speedup_vs_gather": timings["sparse"] / timings["dense"],
        "auto_kernel": index._choose_refine_kernel(
            candidates, union.size, MID_DENSITY_BATCH
        ),
    }


def test_blocked_refinement_matches_looped(workload):
    dataset, index = workload
    for batch_size in BATCH_SIZES:
        result = measure(dataset, index, batch_size)
        for (blocked_ids, blocked_divs), (looped_ids, looped_divs) in zip(
            result["blocked"], result["looped"]
        ):
            np.testing.assert_array_equal(blocked_ids, looped_ids)
            np.testing.assert_array_equal(blocked_divs, looped_divs)


def test_mid_density_kernels_bitwise_identical(workload):
    dataset, index = workload
    measure_mid_density(dataset, index)  # asserts parity


@pytest.mark.slow
def test_blocked_refinement_at_least_2x_at_64(workload):
    dataset, index = workload
    best = max(
        measure(dataset, index, ASSERT_BATCH)["speedup"] for _ in range(3)
    )
    print(
        f"\nblocked refinement speedup at B={ASSERT_BATCH}: "
        f"{best:.2f}x (target {TARGET_SPEEDUP}x)"
    )
    assert best >= TARGET_SPEEDUP


def main() -> None:
    dataset, index = make_workload()
    rows = []
    print(
        f"dataset: {dataset!r}, M={index.n_partitions}, k={K}, "
        f"refinement_block_size=auto"
    )
    for batch_size in BATCH_SIZES:
        result = measure(dataset, index, batch_size)
        rows.append(
            {
                "batch_size": result["batch_size"],
                "looped_seconds": round(result["loop_seconds"], 6),
                "blocked_seconds": round(result["block_seconds"], 6),
                "speedup": round(result["speedup"], 3),
                "mean_candidates": round(result["mean_candidates"], 1),
                "union_candidates": result["union_candidates"],
                "block_rows": result["block_rows"],
            }
        )
        print(
            f"B={batch_size:4d}: looped {result['loop_seconds'] * 1e3:8.2f}ms  "
            f"blocked {result['block_seconds'] * 1e3:8.2f}ms  "
            f"speedup {result['speedup']:5.2f}x  "
            f"(mean cand {result['mean_candidates']:.0f}, "
            f"union {result['union_candidates']}, "
            f"block {result['block_rows']} rows)"
        )

    mid = measure_mid_density(dataset, index)
    print(
        f"mid-density (gather would-be regime): density {mid['density']:.3f}, "
        f"dense {mid['dense_seconds'] * 1e3:.1f}ms vs "
        f"sparse/gather {mid['sparse_seconds'] * 1e3:.1f}ms -> dense "
        f"{mid['dense_speedup_vs_gather']:.2f}x faster (auto -> "
        f"{mid['auto_kernel']}); gather path measured, dropped"
    )

    payload = {
        "benchmark": "refinement_kernel",
        "dataset": DATASET,
        "n_points": N_POINTS,
        "dimensionality": int(dataset.points.shape[1]),
        "divergence": dataset.divergence.name,
        "n_partitions": N_PARTITIONS,
        "k": K,
        "reps": REPS,
        "target_speedup_at_64": TARGET_SPEEDUP,
        "results": rows,
        "mid_density": {
            "note": (
                "dense candidate-row gather would equal the sparse "
                "grouped kernel (the union has no dead rows); dense wins "
                "at ~0.5 density, so the gather path was measured and "
                "dropped"
            ),
            **{
                key: (round(value, 6) if isinstance(value, float) else value)
                for key, value in mid.items()
            },
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")


if __name__ == "__main__":
    main()
