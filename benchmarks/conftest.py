"""Shared benchmark plumbing.

Every benchmark file reproduces one paper table/figure: it runs the
corresponding experiment from :mod:`repro.eval.experiments`, prints the
paper-style report, saves it under ``benchmarks/results/`` (the inputs
to EXPERIMENTS.md), asserts the qualitative shape, and times the hot
query path with pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_report():
    """Persist and echo an :class:`ExperimentReport`."""

    def _save(slug: str, report) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = report.to_text()
        (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
        print("\n" + text)

    return _save


def rows_by(report, **filters):
    """Filter report rows by header=value pairs."""
    idx = {h: i for i, h in enumerate(report.headers)}
    out = []
    for row in report.rows:
        if all(row[idx[key]] == value for key, value in filters.items()):
            out.append(row)
    return out


def column(report, rows, header):
    """Extract one column from already-filtered rows."""
    i = report.headers.index(header)
    return [row[i] for row in rows]
