"""Fig. 9: running time as the number of partitions M varies.

Shares the Fig. 8 sweep (the paper plots both metrics from one run);
this file asserts the time-side shape and benchmarks the two M extremes.
"""

from __future__ import annotations

import pytest

from conftest import column, rows_by
from repro import BrePartitionConfig, BrePartitionIndex
from repro.datasets import load_dataset
from repro.eval.experiments import experiment_fig08_09_m_sweep


@pytest.fixture(scope="module")
def report(save_report):
    rep = experiment_fig08_09_m_sweep(
        dataset_name="audio", m_values=(2, 4, 8, 16, 32), ks=(20, 60, 100), n=1500
    )
    save_report("fig09_time_vs_m", rep)
    return rep


def test_fig09_times_positive(report):
    times = column(report, report.rows, "time_ms")
    assert all(t > 0 for t in times)


def test_fig09_large_m_costs_cpu(report):
    """The ascending branch of the paper's U-shape: far beyond the
    optimum, more partitions mean more per-query work."""
    t_small = min(column(report, rows_by(report, M=2, k=20), "time_ms"))
    t_large = min(column(report, rows_by(report, M=32, k=20), "time_ms"))
    assert t_large >= t_small * 0.8  # traversal work must not vanish


@pytest.mark.parametrize("m", [2, 32])
def test_benchmark_bp_search_by_m(benchmark, m):
    ds = load_dataset("audio", n=1500, n_queries=5, seed=0)
    index = BrePartitionIndex(
        ds.divergence,
        BrePartitionConfig(n_partitions=m, page_size_bytes=ds.page_size_bytes, seed=0),
    ).build(ds.points)
    benchmark.pedantic(index.search, args=(ds.queries[0], 20), rounds=3, iterations=1)
