"""Serve-while-mutating benchmark (epoch/snapshot update subsystem).

The paper names efficient large-scale insert/delete as future work; the
repo's update subsystem serves exact kNN while the index mutates
underneath (delta buffer + tombstones + epoch'd background merges).
This benchmark demonstrates the operational claims:

* **mutation latency**: inserts/deletes land in the in-memory delta
  buffer in O(delta) -- no frozen structure is touched, so applying an
  update never blocks a search;
* **search under delta**: the delta is brute-forced alongside the
  frozen index and merged during Rerank, so search stays exact (and
  page-exact: delta points charge zero pages) at the price of a small
  CPU term that grows with the unmerged delta;
* **merge cost**: ``extend`` appends to the frozen structures (cheap,
  keeps pages valid), ``rebuild`` re-partitions from scratch (slower,
  compacts tombstones away) -- both swap atomically under serving.

Running the file directly rewrites ``BENCH_mutations.json`` at the repo
root (now including a durability arm: WAL append overhead per insert,
crash-recovery time and replay parity).  ``--smoke`` runs a
seconds-scale threaded linearizability pass with no timing claims (safe
on loaded CI runners): concurrent searchers, a mutator and a background
merger hammer one index, and every response must be bitwise equal to
the exact answer for *some* prefix of the applied updates -- bracketed
by the index's monotone ``updates_applied`` counter -- while per-scope
page counts sum exactly to the tracker total.  ``--smoke --faults``
runs the chaos variant instead: seeded transient faults on every shard
with retry/backoff enabled, where all serving responses must stay
bitwise equal to a fault-free twin and the page accounting exact.
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.index import BrePartitionIndex
from repro.datasets import load_dataset
from repro.serve import MicroBatcher, make_serving_index
from repro.storage import FaultInjector

DATASET = "fonts"
N_POINTS = 400
K = 10

SMOKE_OPS = 60
SMOKE_SEARCHES_PER_WORKER = 20
SMOKE_WORKERS = 2

MAIN_DELTA_SIZES = (0, 64, 256)
MAIN_SEARCHES = 32

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_mutations.json"


def _oracle(divergence, live: dict, query: np.ndarray, k: int):
    """Exact (ids, divergences) over a live {id: point} map, id-ascending
    tie order -- the order the snapshot search path guarantees."""
    ids = np.array(sorted(live))
    pts = np.stack([live[int(i)] for i in ids])
    dists = divergence.batch_divergence(pts, query)
    order = np.argsort(dists, kind="stable")[:k]
    return ids[order], dists[order]


def _mutation_pool(n: int) -> np.ndarray:
    """Domain-valid points disjoint from the indexed set.

    The loader holds some points out as queries, so over-request and
    slice to exactly ``n``.
    """
    return load_dataset(DATASET, n=n + 16, n_queries=1, seed=9).points[:n]


# ----------------------------------------------------------------------
# pytest entry point (quick parity check, no threads)
# ----------------------------------------------------------------------


def test_mutated_index_matches_prefix_oracle():
    dataset, index = make_serving_index(
        dataset_name=DATASET, n=200, n_queries=8, iops=None
    )
    live = {int(i): dataset.points[i] for i in range(dataset.points.shape[0])}
    for vec in _mutation_pool(10):
        live[index.insert(vec)] = vec
    for victim in (3, 77):
        index.delete(victim)
        del live[victim]
    index.merge(mode="extend")
    for query in dataset.queries:
        want_ids, want_div = _oracle(dataset.divergence, live, query, K)
        result = index.search(query, K)
        np.testing.assert_array_equal(result.ids, want_ids)
        np.testing.assert_array_equal(result.divergences, want_div)


# ----------------------------------------------------------------------
# smoke / main
# ----------------------------------------------------------------------


def smoke() -> None:
    """Seconds-scale CI pass: threaded linearizability + accounting.

    One mutator applies ``SMOKE_OPS`` inserts/deletes (recording the
    live-set prefix at every version), a background merger alternates
    extend/rebuild merges, and ``SMOKE_WORKERS`` searchers bracket each
    search between two reads of ``updates_applied``.  Every response
    must match the brute-force oracle of some version inside its
    bracket, bitwise; page counts must sum exactly to the tracker
    total.  No wall-clock assertions.
    """
    dataset, index = make_serving_index(
        dataset_name=DATASET, n=N_POINTS, n_queries=8, iops=None
    )
    divergence = dataset.divergence
    queries = dataset.queries
    pool = _mutation_pool(SMOKE_OPS)

    n_base = dataset.points.shape[0]
    live = {int(i): dataset.points[i] for i in range(n_base)}
    prefixes = {0: dict(live)}
    mutation_rng = np.random.default_rng(35)
    pages_before = index.tracker.total_pages_read
    errors: list[BaseException] = []
    records = []
    records_lock = threading.Lock()
    stop = threading.Event()
    merges = {"extend": 0, "rebuild": 0}

    def mutator() -> None:
        try:
            for op in range(SMOKE_OPS):
                if len(live) > n_base // 2 and mutation_rng.random() < 0.4:
                    victim = int(mutation_rng.choice(sorted(live)))
                    index.delete(victim)
                    del live[victim]
                else:
                    vec = pool[op]
                    pid = index.insert(vec)
                    live[pid] = vec
                prefixes[index.updates_applied] = dict(live)
                time.sleep(0.001)
        except BaseException as exc:
            errors.append(exc)
        finally:
            stop.set()

    def merger() -> None:
        try:
            modes = ["extend", "rebuild"]
            turn = 0
            while not stop.is_set():
                time.sleep(0.01)
                mode = modes[turn % 2]
                index.merge(mode=mode, drain_timeout=5.0)
                merges[mode] += 1
                turn += 1
        except BaseException as exc:
            errors.append(exc)

    def searcher(worker: int) -> None:
        try:
            for i in range(SMOKE_SEARCHES_PER_WORKER):
                slot = (worker + i) % len(queries)
                lo = index.updates_applied
                result = index.search(queries[slot], K)
                hi = index.updates_applied
                with records_lock:
                    records.append((slot, result, lo, hi))
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=mutator), threading.Thread(target=merger)]
    threads += [
        threading.Thread(target=searcher, args=(w,)) for w in range(SMOKE_WORKERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    assert len(prefixes) == SMOKE_OPS + 1

    oracle_cache: dict = {}

    def matches(slot: int, result, version: int) -> bool:
        key = (slot, version)
        if key not in oracle_cache:
            oracle_cache[key] = _oracle(
                divergence, prefixes[version], queries[slot], K
            )
        want_ids, want_div = oracle_cache[key]
        return bool(
            np.array_equal(result.ids, want_ids)
            and np.array_equal(result.divergences, want_div)
        )

    for slot, result, lo, hi in records:
        assert any(
            matches(slot, result, version) for version in range(lo, hi + 1)
        ), f"response matches no update prefix in [{lo}, {hi}]"

    charged = sum(result.stats.pages_read for _, result, _, _ in records)
    assert index.tracker.total_pages_read - pages_before == charged

    print(
        f"smoke OK: {len(records)} concurrent responses each bitwise-equal "
        f"to an update-prefix oracle inside its bracket, across {SMOKE_OPS} "
        f"mutations and {merges['extend']} extend / {merges['rebuild']} "
        f"rebuild merges; {charged} charged pages sum exactly to the "
        f"tracker total"
    )


def smoke_faults() -> None:
    """Chaos CI pass: transient shard faults must change nothing.

    Two bitwise-identical indexes (same dataset, seed and config) serve
    the same scripted mutations and queries; one of them takes seeded
    transient read faults (probability well above the 0.05 acceptance
    floor on every shard) absorbed by retry/backoff.  Every response
    served through the :class:`~repro.serve.MicroBatcher` must be
    bitwise equal to the fault-free twin's direct ``search``, each
    response's page count must match the twin's, and the per-shard
    tracker mirrors must still sum exactly to the aggregate.
    """
    import asyncio

    overrides = dict(
        dataset_name=DATASET,
        n=N_POINTS,
        n_queries=16,
        iops=None,
        n_shards=4,
        shard_workers=2,
        io_max_retries=64,
        io_backoff_ms=0.0,
        io_backoff_cap_ms=0.0,
    )
    dataset, faulty = make_serving_index(**overrides)
    _, clean = make_serving_index(**overrides)
    injector = FaultInjector(seed=7)
    injector.set_plan(probability=0.25)  # every shard, >= the 0.05 floor
    faulty.attach_fault_injector(injector)

    pool = _mutation_pool(24)
    for vec in pool:  # identical mutation history on both twins
        faulty.insert(vec)
        clean.insert(vec)
    for victim in (5, 41, 107):
        faulty.delete(victim)
        clean.delete(victim)
    faulty.merge(mode="extend")
    clean.merge(mode="extend")

    queries = dataset.queries
    pages_before = faulty.tracker.total_pages_read

    async def serve():
        async with MicroBatcher(faulty, K, max_batch_size=4) as batcher:
            results = []
            for _ in range(3):  # several rounds keep batches forming
                results.extend(
                    await asyncio.gather(*(batcher.search(q) for q in queries))
                )
            return results, batcher.stats

    results, stats = asyncio.run(serve())

    for i, got in enumerate(results):
        want = clean.search(queries[i % len(queries)], K)
        assert np.array_equal(got.ids, want.ids), "ids drifted under faults"
        assert np.array_equal(
            got.divergences, want.divergences
        ), "divergences drifted under faults"

    assert injector.n_injected > 0, "fault plan never fired"
    retries = sum(s.io_retries for s in stats.batch_stats)
    assert retries >= injector.n_injected

    # accounting stays exact under retries: the serving layer's batch
    # totals equal the tracker delta, and the shard mirrors (which only
    # count charges the aggregate admitted) still sum to the aggregate
    charged = faulty.tracker.total_pages_read - pages_before
    assert stats.total_pages_read == charged
    mirrors = sum(t.total_pages_read for t in faulty.datastore.shard_trackers)
    assert mirrors == faulty.tracker.total_pages_read

    print(
        f"faults smoke OK: {len(results)} served responses bitwise-equal to "
        f"the fault-free twin across {injector.n_injected} injected faults "
        f"({retries} retries) on 4 shards; {charged} charged pages equal the "
        f"tracker delta and the shard mirrors sum exactly"
    )


def bench_durability() -> dict:
    """WAL overhead + crash-recovery timing and parity for the report."""
    with tempfile.TemporaryDirectory() as tmp:
        wal_path = str(Path(tmp) / "bench.wal")
        dataset, index = make_serving_index(
            dataset_name=DATASET, n=N_POINTS, n_queries=8, iops=None,
            wal_path=wal_path,
        )
        pool = _mutation_pool(128)
        start = time.perf_counter()
        inserted = [index.insert(vec) for vec in pool]
        wal_insert_us = (time.perf_counter() - start) / pool.shape[0] * 1e6
        for victim in inserted[::8]:
            index.delete(victim)

        # simulate the crash: recover purely from the on-disk log
        start = time.perf_counter()
        recovered = BrePartitionIndex.recover(
            wal_path, dataset.divergence, config=index.config
        )
        recover_ms = (time.perf_counter() - start) * 1e3

        parity = True
        for query in dataset.queries:
            want = index.search(query, K)
            got = recovered.search(query, K)
            parity &= bool(
                np.array_equal(got.ids, want.ids)
                and np.array_equal(got.divergences, want.divergences)
            )
        assert parity, "recovered index diverged from the crashed one"
        stats = recovered.recovery_stats

        # group commit: N writer threads fsync-appending concurrently,
        # per-append flush vs. one shared flush per commit window
        group = _bench_group_commit(Path(tmp), pool)

        print(
            f"  durability: WAL insert {wal_insert_us:.1f} us/op, recovery "
            f"{recover_ms:.1f} ms ({stats.replayed_inserts} inserts + "
            f"{stats.replayed_deletes} deletes replayed), parity OK"
        )
        print(
            f"  group commit ({group['n_appends']} fsync appends, "
            f"{group['n_writers']} writers): per-append "
            f"{group['per_append']['wall_ms']:.1f} ms / "
            f"{group['per_append']['n_flushes']} flushes vs. "
            f"{group['group_commit_ms']}ms window "
            f"{group['grouped']['wall_ms']:.1f} ms / "
            f"{group['grouped']['n_flushes']} flushes "
            f"({group['grouped']['n_group_followers']} followers shared one)"
        )
        return {
            "wal_insert_us": round(wal_insert_us, 3),
            "recover_ms": round(recover_ms, 3),
            "replayed_inserts": stats.replayed_inserts,
            "replayed_deletes": stats.replayed_deletes,
            "recovered_parity": parity,
            "group_commit": group,
        }


def _bench_group_commit(tmp: Path, pool: np.ndarray) -> dict:
    """Time concurrent fsync appends with and without a commit window.

    Each arm runs the same workload -- ``n_writers`` threads appending
    one insert record per point from ``pool`` -- against a fresh
    fsync-enabled log.  Without ``group_commit_ms`` every append pays
    its own flush+fsync; with it, appends landing inside one window
    share the leader's single flush, so ``n_flushes`` collapses and
    followers only wait.  Both logs must replay to the same record
    count (durability is never traded away).
    """
    from repro.storage import WriteAheadLog

    n_writers = 8
    window_ms = 2.0
    arms = {}
    for label, window in (("per_append", None), ("grouped", window_ms)):
        path = str(tmp / f"group-{label}.wal")
        wal = WriteAheadLog(
            path, fresh=True, fsync=True, group_commit_ms=window
        )
        chunks = np.array_split(np.arange(pool.shape[0]), n_writers)
        barrier = threading.Barrier(n_writers)

        def writer(rows: np.ndarray) -> None:
            barrier.wait()
            for row in rows:
                wal.append_insert(int(row), pool[row], version=int(row) + 1)

        threads = [
            threading.Thread(target=writer, args=(rows,)) for rows in chunks
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_ms = (time.perf_counter() - start) * 1e3
        wal.close()
        scan = WriteAheadLog.scan(path)
        assert len(scan.records) == pool.shape[0]
        assert scan.torn_bytes == 0
        arms[label] = {
            "wall_ms": round(wall_ms, 3),
            "n_flushes": wal.n_flushes,
            "n_group_followers": wal.n_group_followers,
        }
    assert arms["grouped"]["n_flushes"] < arms["per_append"]["n_flushes"]
    return {
        "n_appends": int(pool.shape[0]),
        "n_writers": n_writers,
        "group_commit_ms": window_ms,
        **arms,
    }


def main() -> None:
    dataset, index = make_serving_index(
        dataset_name=DATASET, n=N_POINTS, n_queries=MAIN_SEARCHES, iops=None
    )
    queries = dataset.queries
    pool = _mutation_pool(max(MAIN_DELTA_SIZES))
    print(
        f"mutations: {dataset!r}, M={index.n_partitions}, k={K}, "
        f"delta sweep {MAIN_DELTA_SIZES}"
    )

    # mutation latency: O(delta) appends, no frozen structure touched
    start = time.perf_counter()
    inserted = [index.insert(vec) for vec in pool]
    insert_us = (time.perf_counter() - start) / pool.shape[0] * 1e6
    for pid in inserted:
        index.delete(pid)
    index.merge(mode="rebuild")  # back to a clean frozen base

    rows = []
    for delta in MAIN_DELTA_SIZES:
        for vec in pool[:delta]:
            index.insert(vec)
        start = time.perf_counter()
        for query in queries:
            index.search(query, K)
        seconds = (time.perf_counter() - start) / len(queries)
        rows.append({"delta_size": delta, "mean_search_ms": seconds * 1e3})
        print(f"  delta={delta:4d}: search {seconds * 1e3:7.3f} ms/query")
        if delta:
            merge_stats = index.merge(mode="rebuild")
            print(f"    rebuild merge: {merge_stats.seconds * 1e3:.1f} ms")

    for vec in pool:
        index.insert(vec)
    start = time.perf_counter()
    extend_stats = index.merge(mode="extend")
    print(
        f"  extend merge of {extend_stats.merged_inserts} inserts: "
        f"{extend_stats.seconds * 1e3:.1f} ms (epoch {extend_stats.epoch})"
    )

    durability = bench_durability()

    payload = {
        "benchmark": "mutations",
        "dataset": DATASET,
        "n_points": N_POINTS,
        "dimensionality": int(dataset.points.shape[1]),
        "divergence": dataset.divergence.name,
        "k": K,
        "mean_insert_us": round(insert_us, 3),
        "search_vs_delta": [
            {key: round(value, 6) if isinstance(value, float) else value
             for key, value in row.items()}
            for row in rows
        ],
        "extend_merge_ms": round(extend_stats.seconds * 1e3, 3),
        "durability": durability,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        if "--faults" in sys.argv[1:]:
            smoke_faults()
        else:
            smoke()
    else:
        main()
