"""Fig. 10: the PCCP ablation (contiguous "None" vs PCCP)."""

from __future__ import annotations

import pytest

from conftest import column
from repro import BrePartitionConfig, BrePartitionIndex
from repro.datasets import load_dataset
from repro.eval.experiments import experiment_fig10_pccp


@pytest.fixture(scope="module")
def report(save_report):
    rep = experiment_fig10_pccp(
        dataset_names=("audio", "fonts", "deep", "sift"), k=20, m=8, n=1500
    )
    save_report("fig10_pccp", rep)
    return rep


def test_fig10_all_datasets(report):
    assert len(report.rows) == 4


def test_fig10_pccp_reduces_candidates(report):
    """Paper shape: PCCP shrinks the candidate union on correlated data
    (20-30% in the paper; we require a majority-direction win)."""
    none_c = column(report, report.rows, "cand_none")
    pccp_c = column(report, report.rows, "cand_pccp")
    wins = sum(1 for a, b in zip(none_c, pccp_c) if b <= a * 1.02)
    assert wins >= 3


def test_fig10_pccp_io_not_worse(report):
    none_io = sum(column(report, report.rows, "io_none"))
    pccp_io = sum(column(report, report.rows, "io_pccp"))
    assert pccp_io <= none_io * 1.05


@pytest.mark.parametrize("strategy", ["contiguous", "pccp"])
def test_benchmark_search_by_strategy(benchmark, strategy):
    ds = load_dataset("fonts", n=1500, n_queries=5, seed=0)
    index = BrePartitionIndex(
        ds.divergence,
        BrePartitionConfig(
            n_partitions=8,
            strategy=strategy,
            page_size_bytes=ds.page_size_bytes,
            seed=0,
        ),
    ).build(ds.points)
    benchmark.pedantic(index.search, args=(ds.queries[0], 20), rounds=3, iterations=1)
