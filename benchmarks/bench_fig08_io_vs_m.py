"""Fig. 8: I/O cost as the number of partitions M varies."""

from __future__ import annotations

import pytest

from conftest import column, rows_by
from repro import BrePartitionConfig, BrePartitionIndex
from repro.datasets import load_dataset
from repro.eval.experiments import experiment_fig08_09_m_sweep


@pytest.fixture(scope="module")
def report(save_report):
    rep = experiment_fig08_09_m_sweep(
        dataset_name="fonts", m_values=(2, 4, 8, 16, 32), ks=(20, 60, 100), n=1500
    )
    save_report("fig08_09_m_sweep", rep)
    return rep


def test_fig08_grid_complete(report):
    assert len(report.rows) == 5 * 3


def test_fig08_io_below_full_scan(report):
    """The filter must prune: I/O below the dataset's page count."""
    ds = load_dataset("fonts", n=1500, n_queries=8, seed=0)
    total_pages = -(-ds.n * ds.d * 8 // ds.page_size_bytes)
    ios = column(report, report.rows, "io_pages")
    assert min(ios) < total_pages


def test_fig08_io_grows_with_k(report):
    """Within any M, larger k cannot reduce I/O (radii only grow)."""
    for m in (2, 8, 32):
        rows = rows_by(report, M=m)
        ios = {row[report.headers.index("k")]: row[report.headers.index("io_pages")] for row in rows}
        assert ios[20] <= ios[100] + 1.0


def test_benchmark_bp_search_m8(benchmark):
    ds = load_dataset("fonts", n=1500, n_queries=5, seed=0)
    index = BrePartitionIndex(
        ds.divergence,
        BrePartitionConfig(n_partitions=8, page_size_bytes=ds.page_size_bytes, seed=0),
    ).build(ds.points)
    benchmark.pedantic(index.search, args=(ds.queries[0], 20), rounds=3, iterations=1)
